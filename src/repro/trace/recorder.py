"""Materialized path traces.

:class:`PathTrace` is the central exchange format of the library: a dense
sequence of path ids plus the interning table behind them.  Everything
downstream — profilers, predictors, metrics, the Dynamo simulator — runs
over path traces, whether they came from a real execution (CFG walker or
ISA machine, through the extractor) or straight from a workload's
stochastic path model.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.cfg.program import Program
from repro.errors import TraceError
from repro.trace.events import BranchEvent
from repro.trace.extractor import PathExtractor
from repro.trace.path import PathTable


class PathTrace:
    """A recorded execution as a sequence of path occurrences.

    Attributes
    ----------
    table:
        The :class:`PathTable` mapping ids to paths.
    path_ids:
        ``int64`` array, one entry per path occurrence, in execution
        order.  ``len(path_ids)`` is the total *flow* of the trace (the
        paper's ``Flow``).
    name:
        Optional label (the workload/benchmark name) used in reports.
    """

    def __init__(
        self,
        table: PathTable,
        path_ids: np.ndarray | Iterable[int],
        name: str = "trace",
    ):
        self.table = table
        self.path_ids = np.asarray(path_ids, dtype=np.int64)
        self.name = name
        if self.path_ids.ndim != 1:
            raise TraceError("path_ids must be one-dimensional")
        if len(self.path_ids) and (
            self.path_ids.min() < 0 or self.path_ids.max() >= len(table)
        ):
            raise TraceError("path_ids reference paths outside the table")
        self._cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def flow(self) -> int:
        """Total number of path executions (the paper's ``Flow``)."""
        return int(len(self.path_ids))

    @property
    def num_paths(self) -> int:
        """Number of distinct paths registered in the table."""
        return len(self.table)

    def freqs(self) -> np.ndarray:
        """Per-path execution frequency ``freq(p)``, indexed by path id."""
        return self._cached(
            "freqs",
            lambda: np.bincount(self.path_ids, minlength=len(self.table)),
        )

    # ------------------------------------------------------------------
    # Per-path static attribute arrays (indexed by path id)
    # ------------------------------------------------------------------
    def _per_path(self, key: str, getter) -> np.ndarray:
        return self._cached(
            key,
            lambda: np.array(
                [getter(path) for path in self.table], dtype=np.int64
            ),
        )

    def start_uids(self) -> np.ndarray:
        """Head block uid per path id."""
        return self._per_path("start_uids", lambda p: p.start_uid)

    def instructions_per_path(self) -> np.ndarray:
        """Instruction count per path id (Dynamo cost model input)."""
        return self._per_path("instr", lambda p: p.num_instructions)

    def cond_branches_per_path(self) -> np.ndarray:
        """Conditional branch count per path id (bit-tracing cost input)."""
        return self._per_path("cond", lambda p: p.num_cond_branches)

    def indirect_branches_per_path(self) -> np.ndarray:
        """Indirect branch count per path id."""
        return self._per_path("indirect", lambda p: p.num_indirect_branches)

    def blocks_per_path(self) -> np.ndarray:
        """Block count per path id."""
        return self._per_path("blocks", lambda p: p.num_blocks)

    def ends_backward_per_path(self) -> np.ndarray:
        """Whether each path id ends with a backward taken branch."""
        return self._cached(
            "ends_backward",
            lambda: np.array(
                [path.ends_with_backward_branch for path in self.table],
                dtype=bool,
            ),
        )

    # ------------------------------------------------------------------
    # Derived sequences (one entry per occurrence)
    # ------------------------------------------------------------------
    def head_sequence(self) -> np.ndarray:
        """Head block uid of every occurrence, in execution order."""
        return self.start_uids()[self.path_ids]

    def backward_arrival_mask(self) -> np.ndarray:
        """Whether each occurrence was *entered via* a backward taken branch.

        Occurrence ``i`` arrives via a backward branch exactly when
        occurrence ``i-1``'s path ended with one.  The first occurrence is
        reached from the program entry, not a branch.  This is the precise
        condition under which Dynamo's NET implementation bumps the head
        counter.
        """

        def build() -> np.ndarray:
            ends = self.ends_backward_per_path()[self.path_ids]
            mask = np.empty(len(self.path_ids), dtype=bool)
            if len(mask):
                mask[0] = False
                mask[1:] = ends[:-1]
            return mask

        return self._cached("backward_arrival", build)

    def dynamic_head_uids(self) -> set[int]:
        """Distinct targets of backward taken branches observed in the trace.

        This is the paper's "#Unique Path Heads" (Table 2): the number of
        counters the NET scheme allocates during the run.
        """
        heads = self.head_sequence()[self.backward_arrival_mask()]
        return set(int(uid) for uid in np.unique(heads))

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "PathTrace":
        """A sub-trace sharing the table (used by phase experiments)."""
        return PathTrace(
            self.table, self.path_ids[start:stop], name=f"{self.name}[{start}:{stop}]"
        )

    def concat(self, other: "PathTrace") -> "PathTrace":
        """Concatenate two traces that share one table."""
        if other.table is not self.table:
            raise TraceError("can only concatenate traces sharing a table")
        return PathTrace(
            self.table,
            np.concatenate([self.path_ids, other.path_ids]),
            name=f"{self.name}+{other.name}",
        )

    def _cached(self, key: str, builder) -> np.ndarray:
        if key not in self._cache:
            self._cache[key] = builder()
        return self._cache[key]

    def __len__(self) -> int:
        return self.flow

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PathTrace({self.name!r}, flow={self.flow}, "
            f"paths={self.num_paths})"
        )


def record_path_trace(
    program: Program,
    events: Iterable[BranchEvent],
    name: str = "trace",
    table: PathTable | None = None,
    max_blocks: int | None = 256,
) -> PathTrace:
    """Run the extractor over ``events`` and materialize a path trace."""
    extractor = PathExtractor(program, table=table, max_blocks=max_blocks)
    ids = [occurrence.path_id for occurrence in extractor.extract(events)]
    return PathTrace(extractor.table, np.asarray(ids, dtype=np.int64), name=name)
