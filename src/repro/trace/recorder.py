"""Materialized path traces.

:class:`PathTrace` is the central exchange format of the library: a dense
sequence of path ids plus the interning table behind them.  Everything
downstream — profilers, predictors, metrics, the Dynamo simulator — runs
over path traces, whether they came from a real execution (CFG walker or
ISA machine, through the extractor) or straight from a workload's
stochastic path model.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

import numpy as np

from repro.cfg.program import Program
from repro.errors import TraceError
from repro.trace.batch import EventBatch
from repro.trace.events import BranchEvent
from repro.trace.extractor import PathExtractor
from repro.trace.path import PathTable


#: Cache keys of the per-path static attribute columns, in the order
#: the zero-copy trace archive serializes them (see
#: :meth:`PathTrace.static_columns` and
#: :mod:`repro.experiments.engine.dataplane`).
STATIC_COLUMN_KEYS = (
    "start_uids",
    "instr",
    "cond",
    "indirect",
    "blocks",
    "ends_backward",
)


class ColumnTable:
    """Table stand-in for a trace restored from flat attribute columns.

    A column-restored trace (see :meth:`PathTrace.from_columns`) knows
    every *numeric* per-path attribute but carries no :class:`Path`
    objects — the replay pipeline (predictors, hot sets, quality
    metrics) only ever consumes the columns.  Anything that genuinely
    needs path structure (signatures, block lists, digests) must use
    the original trace; asking this table for it fails loudly instead
    of silently yielding wrong data.
    """

    __slots__ = ("_num_paths",)

    def __init__(self, num_paths: int):
        self._num_paths = int(num_paths)

    def __len__(self) -> int:
        return self._num_paths

    def __iter__(self):
        raise TraceError(
            "column-restored trace carries no Path objects; use the "
            "original trace for path-structure queries"
        )

    def path(self, path_id: int) -> None:
        raise TraceError(
            f"column-restored trace cannot resolve path {path_id}; it "
            "carries attribute columns only"
        )


class PathTrace:
    """A recorded execution as a sequence of path occurrences.

    Attributes
    ----------
    table:
        The :class:`PathTable` mapping ids to paths.
    path_ids:
        ``int64`` array, one entry per path occurrence, in execution
        order.  ``len(path_ids)`` is the total *flow* of the trace (the
        paper's ``Flow``).
    name:
        Optional label (the workload/benchmark name) used in reports.
    """

    def __init__(
        self,
        table: PathTable,
        path_ids: np.ndarray | Iterable[int],
        name: str = "trace",
    ):
        self.table = table
        self.path_ids = np.asarray(path_ids, dtype=np.int64)
        self.name = name
        if self.path_ids.ndim != 1:
            raise TraceError("path_ids must be one-dimensional")
        if len(self.path_ids) and (
            self.path_ids.min() < 0 or self.path_ids.max() >= len(table)
        ):
            raise TraceError("path_ids reference paths outside the table")
        # The occurrence array is content: the engine's trace_digest is
        # memoized per trace object, so mutating it in place would
        # silently re-serve a stale digest (and poison the sweep cache).
        # Everything downstream only reads the array.
        self.path_ids.flags.writeable = False
        self._cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle without the derived-array cache.

        Every cached array is a pure function of the table and the
        occurrence sequence, so a receiver can always rebuild it.
        Shipping the cache would silently bloat every process-pool
        payload by whatever happened to be computed in the parent
        (freqs, occurrence index, …) — for a warm trace, several times
        the trace itself.
        """
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Unpickling materializes a fresh, writeable array; restore the
        # immutability invariant __init__ establishes.
        self.path_ids.flags.writeable = False
        self._cache = {}

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def flow(self) -> int:
        """Total number of path executions (the paper's ``Flow``)."""
        return int(len(self.path_ids))

    @property
    def num_paths(self) -> int:
        """Number of distinct paths registered in the table."""
        return len(self.table)

    def freqs(self) -> np.ndarray:
        """Per-path execution frequency ``freq(p)``, indexed by path id."""
        return self._cached(
            "freqs",
            lambda: np.bincount(self.path_ids, minlength=len(self.table)),
        )

    # ------------------------------------------------------------------
    # Per-path static attribute arrays (indexed by path id)
    # ------------------------------------------------------------------
    def _per_path(self, key: str, getter) -> np.ndarray:
        return self._cached(
            key,
            lambda: np.array(
                [getter(path) for path in self.table], dtype=np.int64
            ),
        )

    def start_uids(self) -> np.ndarray:
        """Head block uid per path id."""
        return self._per_path("start_uids", lambda p: p.start_uid)

    def instructions_per_path(self) -> np.ndarray:
        """Instruction count per path id (Dynamo cost model input)."""
        return self._per_path("instr", lambda p: p.num_instructions)

    def cond_branches_per_path(self) -> np.ndarray:
        """Conditional branch count per path id (bit-tracing cost input)."""
        return self._per_path("cond", lambda p: p.num_cond_branches)

    def indirect_branches_per_path(self) -> np.ndarray:
        """Indirect branch count per path id."""
        return self._per_path("indirect", lambda p: p.num_indirect_branches)

    def blocks_per_path(self) -> np.ndarray:
        """Block count per path id."""
        return self._per_path("blocks", lambda p: p.num_blocks)

    def ends_backward_per_path(self) -> np.ndarray:
        """Whether each path id ends with a backward taken branch."""
        return self._cached(
            "ends_backward",
            lambda: np.array(
                [path.ends_with_backward_branch for path in self.table],
                dtype=bool,
            ),
        )

    # ------------------------------------------------------------------
    # Derived sequences (one entry per occurrence)
    # ------------------------------------------------------------------
    def head_sequence(self) -> np.ndarray:
        """Head block uid of every occurrence, in execution order."""
        return self.start_uids()[self.path_ids]

    def backward_arrival_mask(self) -> np.ndarray:
        """Whether each occurrence was *entered via* a backward taken branch.

        Occurrence ``i`` arrives via a backward branch exactly when
        occurrence ``i-1``'s path ended with one.  The first occurrence is
        reached from the program entry, not a branch.  This is the precise
        condition under which Dynamo's NET implementation bumps the head
        counter.
        """

        def build() -> np.ndarray:
            ends = self.ends_backward_per_path()[self.path_ids]
            mask = np.empty(len(self.path_ids), dtype=bool)
            if len(mask):
                mask[0] = False
                mask[1:] = ends[:-1]
            return mask

        return self._cached("backward_arrival", build)

    def dynamic_head_uids(self) -> set[int]:
        """Distinct targets of backward taken branches observed in the trace.

        This is the paper's "#Unique Path Heads" (Table 2): the number of
        counters the NET scheme allocates during the run.
        """
        heads = self.head_sequence()[self.backward_arrival_mask()]
        return set(int(uid) for uid in np.unique(heads))

    def occurrence_index(self) -> tuple[np.ndarray, np.ndarray]:
        """Occurrence indices grouped by path id (cached).

        Returns ``(order, starts)`` exactly as
        :func:`repro.prediction.base.occurrence_index_arrays` does:
        ``order`` is a stable argsort of :attr:`path_ids` and
        ``order[starts[i]:starts[i+1]]`` lists path ``i``'s occurrence
        indices in execution order.  The grouping is a pure function of
        the trace, so it is computed once and shared by every predictor
        replaying this trace — the sweep engine's per-cell argsort used
        to be one of its hottest redundant computations.
        """
        if "occ_order" not in self._cache:
            order = np.argsort(self.path_ids, kind="stable")
            starts = np.searchsorted(
                self.path_ids[order],
                np.arange(len(self.table) + 1),
                side="left",
            )
            self._cache["occ_order"] = order
            self._cache["occ_starts"] = starts
        return self._cache["occ_order"], self._cache["occ_starts"]

    # ------------------------------------------------------------------
    # Columnar form (the zero-copy data plane's exchange format)
    # ------------------------------------------------------------------
    def static_columns(self) -> dict[str, np.ndarray]:
        """All per-path static attribute arrays, keyed by cache key.

        The keys are :data:`STATIC_COLUMN_KEYS`; together with
        :attr:`path_ids` and :attr:`name` these columns are everything
        the replay pipeline reads, which is what makes the flat
        :class:`~repro.experiments.engine.dataplane.TraceArchive`
        serialization complete for sweep purposes.
        """
        return {
            "start_uids": self.start_uids(),
            "instr": self.instructions_per_path(),
            "cond": self.cond_branches_per_path(),
            "indirect": self.indirect_branches_per_path(),
            "blocks": self.blocks_per_path(),
            "ends_backward": self.ends_backward_per_path(),
        }

    @classmethod
    def from_columns(
        cls,
        name: str,
        num_paths: int,
        path_ids: np.ndarray,
        columns: dict[str, np.ndarray],
    ) -> "PathTrace":
        """Rebuild a replay-equivalent trace from flat attribute columns.

        The result has a :class:`ColumnTable` instead of a real
        :class:`PathTable`: every numeric accessor (frequencies, head
        sequences, occurrence index, per-path sizes) returns exactly
        what the original trace would, while structural queries fail
        loudly.  Used by the sweep data plane to reconstruct traces in
        pool workers without ever pickling ``Path`` objects.
        """
        missing = [key for key in STATIC_COLUMN_KEYS if key not in columns]
        if missing:
            raise TraceError(
                f"trace columns incomplete: missing {', '.join(missing)}"
            )
        trace = cls(ColumnTable(num_paths), path_ids, name=name)
        for key in STATIC_COLUMN_KEYS:
            column = columns[key]
            if len(column) != num_paths:
                raise TraceError(
                    f"column {key!r} has {len(column)} entries for "
                    f"{num_paths} paths"
                )
            trace._cache[key] = column
        return trace

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "PathTrace":
        """A sub-trace sharing the table (used by phase experiments)."""
        return PathTrace(
            self.table, self.path_ids[start:stop], name=f"{self.name}[{start}:{stop}]"
        )

    def concat(self, other: "PathTrace") -> "PathTrace":
        """Concatenate two traces that share one table."""
        if other.table is not self.table:
            raise TraceError("can only concatenate traces sharing a table")
        return PathTrace(
            self.table,
            np.concatenate([self.path_ids, other.path_ids]),
            name=f"{self.name}+{other.name}",
        )

    def _cached(self, key: str, builder) -> np.ndarray:
        if key not in self._cache:
            self._cache[key] = builder()
        return self._cache[key]

    def __len__(self) -> int:
        return self.flow

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PathTrace({self.name!r}, flow={self.flow}, "
            f"paths={self.num_paths})"
        )


def record_path_trace(
    program: Program,
    events: Iterable[BranchEvent] | EventBatch | Iterable[EventBatch],
    name: str = "trace",
    table: PathTable | None = None,
    max_blocks: int | None = 256,
) -> PathTrace:
    """Run the extractor over ``events`` and materialize a path trace.

    ``events`` may be the classic :class:`BranchEvent` iterable, a
    single columnar :class:`~repro.trace.batch.EventBatch`, or an
    iterable of batches forming one stream (e.g. the output of
    ``CFGWalker.walk_batched``).  Both representations of the same
    stream produce digest-identical traces; the columnar form goes
    through the vectorized extractor and is dramatically faster.
    """
    extractor = PathExtractor(program, table=table, max_blocks=max_blocks)
    if isinstance(events, EventBatch):
        ids = extractor.extract_batch_ids(events)
        return PathTrace(extractor.table, ids, name=name)
    iterator = iter(events)
    first = next(iterator, None)
    if isinstance(first, EventBatch):
        ids = extractor.extract_batch_ids(
            itertools.chain([first], iterator)
        )
        return PathTrace(extractor.table, ids, name=name)
    stream = () if first is None else itertools.chain([first], iterator)
    scalar_ids = [
        occurrence.path_id for occurrence in extractor.extract(stream)
    ]
    return PathTrace(
        extractor.table, np.asarray(scalar_ids, dtype=np.int64), name=name
    )
