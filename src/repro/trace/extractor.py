"""Segmentation of a branch-event stream into interprocedural forward paths.

Implements the paper's path definition (§3):

    "An interprocedural forward path starts at the target of a backward
    taken branch and extends up to the next backward taken branch.  The
    path may extend across procedure call or return statements unless the
    call or return is a backward branch.  If a path includes a (forward)
    procedure call it will terminate at the corresponding return branch,
    if not earlier."

Operationally the extractor partitions the event stream into consecutive
segments.  A segment ends when

* a backward taken transfer executes (of any kind — conditional, jump,
  indirect, call or return); the transfer belongs to the ending segment
  and the next segment starts at its target;
* a *forward* return executes while the segment has an open in-path call
  (the "corresponding return" rule); nested call/return pairs therefore
  never appear inside one path, matching the rule's "if not earlier";
* the configured maximum path length is reached (Dynamo bounds trace
  length the same way); or
* the program halts.

Every executed block belongs to exactly one segment, so total flow equals
the number of emitted path occurrences — the partition invariant the
metrics rely on (and that the property tests assert).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.cfg.program import Program
from repro.errors import TraceError
from repro.trace.batch import (
    CODE_FALLTHROUGH,
    CODE_INDIRECT,
    CODE_TAKEN,
    EventBatch,
)
from repro.trace.columnar import find_cuts
from repro.trace.events import HALT_DST, BranchEvent
from repro.trace.path import Path, PathSignature, PathTable, SignatureRegister


@dataclass(frozen=True, slots=True)
class PathOccurrence:
    """One dynamic execution of a path: the path id plus its position."""

    path_id: int
    index: int


#: Segment-memo markers distinguishing how a segment ended (two
#: segments with identical event columns but different endings resolve
#: to different paths: a cut segment excludes the cut event's target
#: from its block list, the unterminated tail includes every target).
_END_FORWARD = 0
_END_BACKWARD = 1
_END_TAIL = 2


@dataclass(slots=True)
class _BatchCursor:
    """Streaming state while extracting a sequence of batches."""

    uid: int  # start uid of the open segment
    expect_src: int  # src the next event must carry (continuity check)
    halted: bool = False
    carry_dst: np.ndarray | None = None
    carry_kind: np.ndarray | None = None
    carry_backward: np.ndarray | None = None
    ids: list[int] = field(default_factory=list)


class PathExtractor:
    """Stateful segmenter turning branch events into path occurrences.

    Parameters
    ----------
    program:
        The program the events were produced from (provides block sizes
        and addresses for signatures and size figures).
    table:
        Path interning table; supply one to share across runs, otherwise a
        fresh table is created and exposed as :attr:`table`.
    max_blocks:
        Maximum number of blocks per path before a forced cut.  Dynamo
        bounds trace length the same way; ``None`` disables the cap.
    """

    def __init__(
        self,
        program: Program,
        table: PathTable | None = None,
        max_blocks: int | None = 256,
    ):
        if max_blocks is not None and max_blocks < 1:
            raise TraceError("max_blocks must be positive or None")
        self._program = program
        self.table = table if table is not None else PathTable()
        self._max_blocks = max_blocks
        # Batched extraction interns whole segments through this memo:
        # a segment's path (and thus its table id) is a pure function of
        # (start uid, event targets, event kinds, how it ended), so a
        # byte-string key resolves repeated segments without rebuilding
        # Path objects.  See :meth:`extract_batch`.
        self._segment_memo: dict[tuple, int] = {}

    def extract(
        self, events: Iterable[BranchEvent], start_uid: int | None = None
    ) -> Iterator[PathOccurrence]:
        """Yield one :class:`PathOccurrence` per completed segment.

        ``start_uid`` overrides the initial block (defaults to the program
        entry).  The final, possibly unterminated segment is emitted when
        the event stream ends.
        """
        program = self._program
        current_uid = (
            start_uid if start_uid is not None else program.entry_block.uid
        )
        occurrence_index = 0

        blocks: list[int] = [current_uid]
        register = SignatureRegister(program.block_by_uid(current_uid).address)
        open_calls = 0
        ends_backward = False

        def flush() -> PathOccurrence:
            nonlocal blocks, register, open_calls, ends_backward
            nonlocal occurrence_index
            path = self._make_path(blocks, register.snapshot(), ends_backward)
            occurrence = PathOccurrence(
                path_id=self.table.intern(path), index=occurrence_index
            )
            occurrence_index += 1
            blocks = []
            open_calls = 0
            ends_backward = False
            return occurrence

        def start_segment(uid: int) -> None:
            nonlocal blocks, register
            blocks = [uid]
            register = SignatureRegister(program.block_by_uid(uid).address)

        for event in events:
            if blocks and event.src != blocks[-1]:
                raise TraceError(
                    f"event source {event.src} does not match current "
                    f"block {blocks[-1]}"
                )

            bit = event.history_bit
            if bit is not None:
                register.shift(bit)
            if event.is_indirect:
                if event.dst != HALT_DST:
                    register.record_indirect(
                        program.block_by_uid(event.dst).address
                    )

            if event.dst == HALT_DST:
                ends_backward = False
                yield flush()
                return

            if event.backward:
                ends_backward = True
                yield flush()
                start_segment(event.dst)
                continue

            if event.is_call:
                open_calls += 1
            elif event.is_return:
                if open_calls > 0:
                    # Forward return closing an in-path call: the path
                    # terminates at the return branch.
                    ends_backward = False
                    yield flush()
                    start_segment(event.dst)
                    continue

            if (
                self._max_blocks is not None
                and len(blocks) >= self._max_blocks
            ):
                # The overflowing transfer terminates the segment; its
                # target block opens the next one, keeping the partition
                # invariant (each block in exactly one segment).
                ends_backward = False
                yield flush()
                start_segment(event.dst)
            else:
                blocks.append(event.dst)

        if blocks:
            ends_backward = False
            yield flush()

    # ------------------------------------------------------------------
    # Columnar (batched) extraction
    # ------------------------------------------------------------------
    def extract_batch(
        self, batch: EventBatch, start_uid: int | None = None
    ) -> list[PathOccurrence]:
        """Vectorized :meth:`extract` over one complete columnar stream.

        Produces exactly the occurrences (and interns exactly the paths,
        in the same order) that :meth:`extract` would over the same
        events — the equivalence the digest tests pin down.
        """
        ids = self.extract_batch_ids(batch, start_uid=start_uid)
        return [
            PathOccurrence(path_id=path_id, index=index)
            for index, path_id in enumerate(ids.tolist())
        ]

    def extract_batch_ids(
        self,
        batches: EventBatch | Iterable[EventBatch],
        start_uid: int | None = None,
    ) -> np.ndarray:
        """Path ids for a columnar stream, one entry per occurrence.

        Accepts a single :class:`EventBatch` or an iterable of batches
        forming one stream (events carried across batch boundaries stay
        in their segment).  Segment boundaries come from
        :func:`repro.trace.columnar.find_cuts`; each segment resolves to
        a table id through a byte-string memo, so repeated segments —
        the overwhelmingly common case on loopy programs — cost no
        per-event Python work at all.
        """
        if isinstance(batches, EventBatch):
            batches = (batches,)
        stream = self.stream(start_uid=start_uid)
        ids: list[int] = []
        for batch in batches:
            ids.extend(stream.feed(batch))
        ids.extend(stream.finish())
        return np.asarray(ids, dtype=np.int64)

    def stream(self, start_uid: int | None = None) -> "PathStream":
        """An incremental extraction session over one event stream.

        Where :meth:`extract_batch_ids` consumes a complete stream in
        one call, the returned :class:`PathStream` accepts batches one
        at a time as they arrive — the online form the prediction
        server ingests tenants through.  Feeding every batch and then
        finishing yields exactly the ids :meth:`extract_batch_ids`
        returns for the same stream.
        """
        uid = (
            start_uid
            if start_uid is not None
            else self._program.entry_block.uid
        )
        return PathStream(self, _BatchCursor(uid=uid, expect_src=uid))

    def resume_stream(self, state: dict) -> "PathStream":
        """Rebuild a :class:`PathStream` from a :meth:`PathStream.checkpoint`.

        The extractor must share the path table the checkpointed stream
        was interning into (restored tables re-intern paths in their
        original order, so ids keep meaning the same paths).
        """
        carry_dst = state["carry_dst"]
        cursor = _BatchCursor(
            uid=int(state["uid"]),
            expect_src=int(state["expect_src"]),
            halted=bool(state["halted"]),
        )
        if carry_dst:
            cursor.carry_dst = np.asarray(carry_dst, dtype=np.int64)
            cursor.carry_kind = np.asarray(
                state["carry_kind"], dtype=np.uint8
            )
            cursor.carry_backward = np.asarray(
                state["carry_backward"], dtype=np.uint8
            ).astype(bool)
        stream = PathStream(self, cursor)
        stream._finished = bool(state.get("finished", False))
        return stream

    def _consume_batch(self, batch: EventBatch, cursor: _BatchCursor) -> None:
        if len(batch) == 0:
            return
        src = batch.src
        dst = batch.dst
        kind = batch.kind
        backward = batch.backward

        # Truncate at the first halt: the stream ends there, and events
        # beyond it are never even validated by the scalar extractor.
        halts = np.flatnonzero(dst == HALT_DST)
        if halts.size:
            end = int(halts[0]) + 1
            src = src[:end]
            dst = dst[:end]
            kind = kind[:end]
            backward = backward[:end]
            cursor.halted = True

        # Continuity validation, the batch form of the scalar "event
        # source does not match current block" check: every event's src
        # must be the previous event's dst (the first continuing from
        # the open segment).
        if int(src[0]) != cursor.expect_src:
            raise TraceError(
                f"event source {int(src[0])} does not match current "
                f"block {cursor.expect_src}"
            )
        if len(src) > 1:
            mismatch = np.flatnonzero(src[1:] != dst[:-1])
            if mismatch.size:
                at = int(mismatch[0])
                raise TraceError(
                    f"event source {int(src[at + 1])} does not match "
                    f"current block {int(dst[at])}"
                )
        cursor.expect_src = int(dst[-1])

        # Prepend the open segment's carried events (bounded by
        # max_blocks: a length cut fires before the carry can grow past
        # it) so cuts are found with full segment context.
        if cursor.carry_dst is not None and len(cursor.carry_dst):
            dst = np.concatenate((cursor.carry_dst, dst))
            kind = np.concatenate((cursor.carry_kind, kind))
            backward = np.concatenate((cursor.carry_backward, backward))
        cursor.carry_dst = None
        cursor.carry_kind = None
        cursor.carry_backward = None

        cuts = find_cuts(dst, kind, backward, self._max_blocks)

        prev = -1
        uid = cursor.uid
        memo = self._segment_memo
        intern = self._intern_segment
        ids = cursor.ids
        for cut in cuts.tolist():
            begin = prev + 1
            dst_slice = dst[begin : cut + 1]
            kind_slice = kind[begin : cut + 1]
            marker = _END_BACKWARD if backward[cut] else _END_FORWARD
            key = (uid, dst_slice.tobytes(), kind_slice.tobytes(), marker)
            path_id = memo.get(key)
            if path_id is None:
                path_id = intern(uid, dst_slice, kind_slice, marker)
                memo[key] = path_id
            ids.append(path_id)
            prev = cut
            uid = int(dst[cut])

        cursor.uid = uid
        begin = prev + 1
        if not cursor.halted and begin < len(dst):
            # Events after the last cut stay buffered as the open
            # segment (copied: the slices would pin the whole batch).
            cursor.carry_dst = dst[begin:].copy()
            cursor.carry_kind = kind[begin:].copy()
            cursor.carry_backward = backward[begin:].copy()

    def _flush_tail(self, cursor: _BatchCursor) -> None:
        """Emit the final, unterminated segment (scalar always does)."""
        if cursor.carry_dst is None:
            dst_slice = np.empty(0, dtype=np.int64)
            kind_slice = np.empty(0, dtype=np.uint8)
        else:
            dst_slice = cursor.carry_dst
            kind_slice = cursor.carry_kind
        key = (
            cursor.uid,
            dst_slice.tobytes(),
            kind_slice.tobytes(),
            _END_TAIL,
        )
        path_id = self._segment_memo.get(key)
        if path_id is None:
            path_id = self._intern_segment(
                cursor.uid, dst_slice, kind_slice, _END_TAIL
            )
            self._segment_memo[key] = path_id
        cursor.ids.append(path_id)

    def _intern_segment(
        self,
        uid: int,
        dst_slice: np.ndarray,
        kind_slice: np.ndarray,
        marker: int,
    ) -> int:
        """Rebuild one segment's Path scalar-style and intern it.

        Runs once per *distinct* segment (memo misses only); the block
        list, signature bits and indirect targets are reconstructed
        exactly as the scalar extractor's shift register builds them.
        """
        program = self._program
        dsts = dst_slice.tolist()
        kinds = kind_slice.tolist()
        # A cut segment's final event belongs to it (its history bit is
        # shifted in) but its target opens the next segment; the tail
        # segment keeps every target.
        block_dsts = dsts if marker == _END_TAIL else dsts[:-1]
        blocks = [uid]
        blocks.extend(block_dsts)
        history = 0
        bit_count = 0
        indirect: list[int] = []
        for dst, code in zip(dsts, kinds):
            if code == CODE_TAKEN:
                history = (history << 1) | 1
                bit_count += 1
            elif code == CODE_FALLTHROUGH:
                history <<= 1
                bit_count += 1
            elif code == CODE_INDIRECT and dst != HALT_DST:
                indirect.append(program.block_by_uid(dst).address)
        signature = PathSignature(
            start_address=program.block_by_uid(uid).address,
            history=history,
            bit_count=bit_count,
            indirect_targets=tuple(indirect),
        )
        path = self._make_path(blocks, signature, marker == _END_BACKWARD)
        return self.table.intern(path)

    def _make_path(
        self,
        blocks: list[int],
        signature: PathSignature,
        ends_backward: bool,
    ) -> Path:
        program = self._program
        num_instructions = 0
        num_cond = signature.bit_count
        num_indirect = len(signature.indirect_targets)
        for uid in blocks:
            num_instructions += program.block_by_uid(uid).size
        return Path(
            signature=signature,
            blocks=tuple(blocks),
            start_uid=blocks[0],
            num_instructions=num_instructions,
            num_cond_branches=num_cond,
            num_indirect_branches=num_indirect,
            ends_with_backward_branch=ends_backward,
        )


class PathStream:
    """One live event stream being segmented incrementally.

    Created by :meth:`PathExtractor.stream`.  :meth:`feed` consumes one
    columnar batch and returns the ids of the segments that *completed*
    inside it; events after the last cut stay buffered as the open
    segment until a later batch (or :meth:`finish`) closes them.
    :meth:`finish` ends the stream, emitting the final unterminated
    segment exactly as the one-shot extractors do.

    The stream shares its extractor's path table and segment memo, so
    ids are directly comparable with any other extraction over the same
    extractor, and repeated segments cost no per-event Python work.
    """

    __slots__ = ("_extractor", "_cursor", "_finished")

    def __init__(self, extractor: PathExtractor, cursor: _BatchCursor):
        self._extractor = extractor
        self._cursor = cursor
        self._finished = False

    @property
    def halted(self) -> bool:
        """Whether the stream saw a halt event (further feeds are no-ops)."""
        return self._cursor.halted

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has been called."""
        return self._finished

    @property
    def position(self) -> int:
        """The block uid the stream is at: the src the next event must
        carry.  A new stream over the same program can resume here
        (``PathExtractor.stream(start_uid=position)``) after the open
        segment's buffered events are discarded — how the serving layer
        re-admits an evicted tenant mid-stream."""
        return self._cursor.expect_src

    def feed(self, batch: EventBatch) -> list[int]:
        """Consume one batch; return ids of segments it completed."""
        if self._finished:
            raise TraceError("cannot feed a finished path stream")
        cursor = self._cursor
        if not cursor.halted:
            # The scalar extractor stops consuming at halt; events past
            # it are ignored, not validated.
            self._extractor._consume_batch(batch, cursor)
        return self._drain()

    def finish(self) -> list[int]:
        """End the stream; return ids the final flush completed."""
        if self._finished:
            raise TraceError("path stream already finished")
        self._finished = True
        cursor = self._cursor
        if not cursor.halted:
            self._extractor._flush_tail(cursor)
        return self._drain()

    def _drain(self) -> list[int]:
        ids = self._cursor.ids
        self._cursor.ids = []
        return ids

    # ------------------------------------------------------------------
    # Durable state (serving checkpoints)
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """The stream's cursor as plain JSON-able data.

        Captures everything :meth:`feed` carries between batches: the
        open segment's start uid, the continuity expectation, the halt
        flag and the buffered (carried) open-segment columns.  Only
        valid at a batch boundary — i.e. with no undrained completed
        segments, which is always true between :meth:`feed` calls.
        :meth:`PathExtractor.resume_stream` is the inverse; a resumed
        stream continues the event stream byte-identically (same cuts,
        same interned paths, same ids).
        """
        cursor = self._cursor
        if cursor.ids:
            raise TraceError(
                "cannot checkpoint a path stream with undrained segments"
            )
        carry = cursor.carry_dst is not None and len(cursor.carry_dst) > 0
        return {
            "uid": int(cursor.uid),
            "expect_src": int(cursor.expect_src),
            "halted": bool(cursor.halted),
            "finished": self._finished,
            "carry_dst": cursor.carry_dst.tolist() if carry else [],
            "carry_kind": cursor.carry_kind.tolist() if carry else [],
            "carry_backward": (
                cursor.carry_backward.astype(np.uint8).tolist()
                if carry
                else []
            ),
        }


def extract_paths(
    program: Program,
    events: Iterable[BranchEvent],
    table: PathTable | None = None,
    max_blocks: int | None = 256,
) -> tuple[list[PathOccurrence], PathTable]:
    """Materialize the full occurrence list for an event stream."""
    extractor = PathExtractor(program, table=table, max_blocks=max_blocks)
    occurrences = list(extractor.extract(events))
    return occurrences, extractor.table
