"""Segmentation of a branch-event stream into interprocedural forward paths.

Implements the paper's path definition (§3):

    "An interprocedural forward path starts at the target of a backward
    taken branch and extends up to the next backward taken branch.  The
    path may extend across procedure call or return statements unless the
    call or return is a backward branch.  If a path includes a (forward)
    procedure call it will terminate at the corresponding return branch,
    if not earlier."

Operationally the extractor partitions the event stream into consecutive
segments.  A segment ends when

* a backward taken transfer executes (of any kind — conditional, jump,
  indirect, call or return); the transfer belongs to the ending segment
  and the next segment starts at its target;
* a *forward* return executes while the segment has an open in-path call
  (the "corresponding return" rule); nested call/return pairs therefore
  never appear inside one path, matching the rule's "if not earlier";
* the configured maximum path length is reached (Dynamo bounds trace
  length the same way); or
* the program halts.

Every executed block belongs to exactly one segment, so total flow equals
the number of emitted path occurrences — the partition invariant the
metrics rely on (and that the property tests assert).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.cfg.program import Program
from repro.errors import TraceError
from repro.trace.events import HALT_DST, BranchEvent
from repro.trace.path import Path, PathSignature, PathTable, SignatureRegister


@dataclass(frozen=True, slots=True)
class PathOccurrence:
    """One dynamic execution of a path: the path id plus its position."""

    path_id: int
    index: int


class PathExtractor:
    """Stateful segmenter turning branch events into path occurrences.

    Parameters
    ----------
    program:
        The program the events were produced from (provides block sizes
        and addresses for signatures and size figures).
    table:
        Path interning table; supply one to share across runs, otherwise a
        fresh table is created and exposed as :attr:`table`.
    max_blocks:
        Maximum number of blocks per path before a forced cut.  Dynamo
        bounds trace length the same way; ``None`` disables the cap.
    """

    def __init__(
        self,
        program: Program,
        table: PathTable | None = None,
        max_blocks: int | None = 256,
    ):
        if max_blocks is not None and max_blocks < 1:
            raise TraceError("max_blocks must be positive or None")
        self._program = program
        self.table = table if table is not None else PathTable()
        self._max_blocks = max_blocks

    def extract(
        self, events: Iterable[BranchEvent], start_uid: int | None = None
    ) -> Iterator[PathOccurrence]:
        """Yield one :class:`PathOccurrence` per completed segment.

        ``start_uid`` overrides the initial block (defaults to the program
        entry).  The final, possibly unterminated segment is emitted when
        the event stream ends.
        """
        program = self._program
        current_uid = (
            start_uid if start_uid is not None else program.entry_block.uid
        )
        occurrence_index = 0

        blocks: list[int] = [current_uid]
        register = SignatureRegister(program.block_by_uid(current_uid).address)
        open_calls = 0
        ends_backward = False

        def flush() -> PathOccurrence:
            nonlocal blocks, register, open_calls, ends_backward
            nonlocal occurrence_index
            path = self._make_path(blocks, register.snapshot(), ends_backward)
            occurrence = PathOccurrence(
                path_id=self.table.intern(path), index=occurrence_index
            )
            occurrence_index += 1
            blocks = []
            open_calls = 0
            ends_backward = False
            return occurrence

        def start_segment(uid: int) -> None:
            nonlocal blocks, register
            blocks = [uid]
            register = SignatureRegister(program.block_by_uid(uid).address)

        for event in events:
            if blocks and event.src != blocks[-1]:
                raise TraceError(
                    f"event source {event.src} does not match current "
                    f"block {blocks[-1]}"
                )

            bit = event.history_bit
            if bit is not None:
                register.shift(bit)
            if event.is_indirect:
                if event.dst != HALT_DST:
                    register.record_indirect(
                        program.block_by_uid(event.dst).address
                    )

            if event.dst == HALT_DST:
                ends_backward = False
                yield flush()
                return

            if event.backward:
                ends_backward = True
                yield flush()
                start_segment(event.dst)
                continue

            if event.is_call:
                open_calls += 1
            elif event.is_return:
                if open_calls > 0:
                    # Forward return closing an in-path call: the path
                    # terminates at the return branch.
                    ends_backward = False
                    yield flush()
                    start_segment(event.dst)
                    continue

            if (
                self._max_blocks is not None
                and len(blocks) >= self._max_blocks
            ):
                # The overflowing transfer terminates the segment; its
                # target block opens the next one, keeping the partition
                # invariant (each block in exactly one segment).
                ends_backward = False
                yield flush()
                start_segment(event.dst)
            else:
                blocks.append(event.dst)

        if blocks:
            ends_backward = False
            yield flush()

    def _make_path(
        self,
        blocks: list[int],
        signature: PathSignature,
        ends_backward: bool,
    ) -> Path:
        program = self._program
        num_instructions = 0
        num_cond = signature.bit_count
        num_indirect = len(signature.indirect_targets)
        for uid in blocks:
            num_instructions += program.block_by_uid(uid).size
        return Path(
            signature=signature,
            blocks=tuple(blocks),
            start_uid=blocks[0],
            num_instructions=num_instructions,
            num_cond_branches=num_cond,
            num_indirect_branches=num_indirect,
            ends_with_backward_branch=ends_backward,
        )


def extract_paths(
    program: Program,
    events: Iterable[BranchEvent],
    table: PathTable | None = None,
    max_blocks: int | None = 256,
) -> tuple[list[PathOccurrence], PathTable]:
    """Materialize the full occurrence list for an event stream."""
    extractor = PathExtractor(program, table=table, max_blocks=max_blocks)
    occurrences = list(extractor.extract(events))
    return occurrences, extractor.table
