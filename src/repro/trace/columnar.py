"""Vectorized segmentation of columnar event streams.

:func:`find_cuts` locates every path-ending event in an
:class:`~repro.trace.batch.EventBatch` using the same rules as the
scalar :class:`~repro.trace.extractor.PathExtractor` (paper §3):

* **hard cuts** — backward taken transfers and the halt event — are a
  single mask;
* **return cuts** — a forward return closing an in-path forward call —
  follow from the positions of forward calls and forward returns: the
  extractor's ``open_calls`` counter never decrements within a segment,
  so the first forward return after the first forward call *is* the cut;
* **max-length cuts** fall at a fixed offset from the segment start.

Most segments end at a hard cut with neither a length overflow nor a
call/return pair inside, so the implementation classifies all
hard-to-hard regions vectorized and only walks the rare "complex"
regions with a chained scan.  The cut list drives both the batched path
extractor and the batched bit-tracing profiler, which is what keeps the
two in exact agreement (they already agree scalar-to-scalar).
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.trace.batch import CODE_CALL, CODE_RETURN
from repro.trace.events import HALT_DST

#: Sentinel "no candidate" index, larger than any real event index.
_NO_CUT = np.iinfo(np.int64).max


def _first_after(sorted_indices: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """For each query, the smallest entry strictly greater than it."""
    if sorted_indices.size == 0:
        return np.full(len(queries), _NO_CUT, dtype=np.int64)
    pos = np.searchsorted(sorted_indices, queries, side="right")
    safe = np.minimum(pos, sorted_indices.size - 1)
    return np.where(pos < sorted_indices.size, sorted_indices[safe], _NO_CUT)


def find_cuts(
    dst: np.ndarray,
    kind: np.ndarray,
    backward: np.ndarray,
    max_blocks: int | None,
) -> np.ndarray:
    """Indices of every segment-ending event, ascending.

    The columns must already be truncated at the first halt event (the
    scalar extractor stops consuming there).  A segment starting right
    after cut ``p`` (or at ``p = -1`` for the stream head) ends at the
    smallest index among: the next hard cut (backward or halt), the
    first forward return preceded by a forward call within the segment,
    and ``p + max_blocks``.  Events after the last cut form the
    unterminated tail and produce no entry.
    """
    n = len(dst)
    if n == 0:
        return np.empty(0, dtype=np.int64)

    hard = np.flatnonzero(backward | (dst == HALT_DST))
    fwd_call = np.flatnonzero((kind == CODE_CALL) & ~backward)
    no_max = max_blocks is None
    if no_max and fwd_call.size == 0:
        return hard  # only hard cuts can fire

    fwd_ret = np.flatnonzero((kind == CODE_RETURN) & ~backward)

    # Region k spans (starts[k], ends[k]]: from just after one hard cut
    # to the next (the final region ends at n: no hard cut, the tail).
    starts = np.concatenate(([np.int64(-1)], hard))
    ends = np.concatenate((hard, [np.int64(n)]))

    # First forward call strictly after each region start, then the
    # first forward return strictly after that call: if that return
    # falls before the region's hard cut, the region needs sub-cuts.
    first_call = _first_after(fwd_call, starts)
    first_ret = _first_after(fwd_ret, first_call)

    simple = first_ret >= ends
    if not no_max:
        simple &= (ends - starts) <= max_blocks

    if bool(simple.all()):
        return hard

    cuts: list[int] = []
    complex_regions = np.flatnonzero(~simple)
    calls = fwd_call.tolist()
    rets = fwd_ret.tolist()
    for k in complex_regions.tolist():
        p = int(starts[k])
        h = int(ends[k])  # == n for the tail region
        while True:
            cut = h
            if not no_max:
                cut = min(cut, p + max_blocks)
            ci_k = bisect_right(calls, p)
            if ci_k < len(calls) and calls[ci_k] < cut:
                ri_k = bisect_right(rets, calls[ci_k])
                if ri_k < len(rets):
                    cut = min(cut, rets[ri_k])
            if cut >= n:
                break  # unterminated tail: no cut
            cuts.append(cut)
            if cut == h:
                break
            p = cut

    simple_cuts = ends[simple & (ends < n)]
    if cuts:
        return np.sort(
            np.concatenate((simple_cuts, np.asarray(cuts, dtype=np.int64)))
        )
    return simple_cuts.astype(np.int64, copy=False)
