"""Execution of a CFG program under a branch oracle.

The walker is the bridge between static programs and dynamic traces when
no real ISA-level code exists: it executes a :class:`repro.cfg.Program`
block by block, asking a :class:`BranchOracle` to resolve every
conditional, indirect and call decision, and emits the resulting
:class:`BranchEvent` stream.  Oracles are deterministic given their seed,
so every trace in the test-suite and the experiments is reproducible.
"""

from __future__ import annotations

import random
import time
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.cfg.block import BasicBlock, BranchKind
from repro.cfg.edge import EdgeKind
from repro.cfg.program import Program
from repro.errors import MachineLimitExceeded, TraceError
from repro.obs.core import Registry, get_registry
from repro.trace.batch import (
    CODE_CALL,
    CODE_FALLTHROUGH,
    CODE_INDIRECT,
    CODE_JUMP,
    CODE_RETURN,
    CODE_STRAIGHT,
    CODE_TAKEN,
    EventBatch,
    EventBatchBuilder,
)
from repro.trace.events import HALT_DST, BranchEvent, halt_event


class BranchOracle(Protocol):
    """Decision source for dynamic control flow."""

    def decide_cond(self, block: BasicBlock) -> bool:
        """Whether the conditional branch ending ``block`` is taken."""

    def decide_multiway(self, block: BasicBlock, arity: int) -> int:
        """Index of the chosen target for an indirect jump or call."""


class RandomOracle:
    """Seeded random decisions with optional per-block taken bias.

    ``bias`` maps block uids to the probability that the conditional
    branch is taken; blocks not in the map use ``default_bias``.
    """

    def __init__(
        self,
        seed: int,
        bias: dict[int, float] | None = None,
        default_bias: float = 0.5,
    ):
        self._rng = random.Random(seed)
        self._bias = dict(bias or {})
        self._default_bias = default_bias

    def decide_cond(self, block: BasicBlock) -> bool:
        probability = self._bias.get(block.uid, self._default_bias)
        return self._rng.random() < probability

    def decide_multiway(self, block: BasicBlock, arity: int) -> int:
        return self._rng.randrange(arity)


class BlockRandomOracle:
    """Random oracle drawing its uniforms in vectorized blocks.

    Behaves like :class:`RandomOracle` (per-block taken bias, seeded
    determinism) but sources randomness from a numpy generator refilled
    ``block_size`` draws at a time — the per-decision cost is one array
    read instead of a ``random.Random`` call.  Decisions depend only on
    the order they are requested in, so the same oracle instance drives
    :meth:`CFGWalker.walk` and :meth:`CFGWalker.walk_batched` to the
    exact same trace.  (The stream differs from ``RandomOracle`` with
    the same seed: the underlying generators differ.)
    """

    def __init__(
        self,
        seed: int,
        bias: dict[int, float] | None = None,
        default_bias: float = 0.5,
        block_size: int = 4096,
    ):
        if block_size < 1:
            raise TraceError("block_size must be positive")
        self._rng = np.random.default_rng(seed)
        self._bias = dict(bias or {})
        self._default_bias = default_bias
        self._block_size = block_size
        self._uniforms: list[float] = []
        self._cursor = 0

    def _next_uniform(self) -> float:
        if self._cursor >= len(self._uniforms):
            self._uniforms = self._rng.random(self._block_size).tolist()
            self._cursor = 0
        value = self._uniforms[self._cursor]
        self._cursor += 1
        return value

    def decide_cond(self, block: BasicBlock) -> bool:
        probability = self._bias.get(block.uid, self._default_bias)
        return self._next_uniform() < probability

    def decide_multiway(self, block: BasicBlock, arity: int) -> int:
        return min(int(self._next_uniform() * arity), arity - 1)


class TripCountOracle:
    """Loop-aware oracle: bounded trip counts over a random base oracle.

    ``trip_counts`` maps loop-header uids to the number of consecutive
    *taken* decisions before one not-taken (loop exit); the counter then
    resets so re-entered loops iterate again.  The generator convention is
    that a loop header's taken edge enters the loop body.  Blocks without
    an entry fall back to the base oracle.
    """

    def __init__(self, base: BranchOracle, trip_counts: dict[int, int]):
        for uid, trips in trip_counts.items():
            if trips < 0:
                raise TraceError(
                    f"trip count for block {uid} must be non-negative"
                )
        self._base = base
        self._trip_counts = dict(trip_counts)
        self._remaining: dict[int, int] = {}

    def decide_cond(self, block: BasicBlock) -> bool:
        if block.uid not in self._trip_counts:
            return self._base.decide_cond(block)
        remaining = self._remaining.get(block.uid, self._trip_counts[block.uid])
        if remaining > 0:
            self._remaining[block.uid] = remaining - 1
            return True
        self._remaining[block.uid] = self._trip_counts[block.uid]
        return False

    def decide_multiway(self, block: BasicBlock, arity: int) -> int:
        return self._base.decide_multiway(block, arity)


class ScriptedOracle:
    """Replays a fixed list of decisions; raises when the script runs dry.

    Conditional decisions consume booleans; multiway decisions consume
    integers.  Used by unit tests to force exact control-flow sequences.
    """

    def __init__(self, decisions: list[bool | int]):
        self._decisions = list(decisions)
        self._cursor = 0

    def _next(self) -> bool | int:
        if self._cursor >= len(self._decisions):
            raise TraceError("scripted oracle ran out of decisions")
        value = self._decisions[self._cursor]
        self._cursor += 1
        return value

    def decide_cond(self, block: BasicBlock) -> bool:
        value = self._next()
        if not isinstance(value, bool):
            raise TraceError(
                f"expected a boolean decision for {block}, got {value!r}"
            )
        return value

    def decide_multiway(self, block: BasicBlock, arity: int) -> int:
        value = self._next()
        if isinstance(value, bool) or not isinstance(value, int):
            raise TraceError(
                f"expected an integer decision for {block}, got {value!r}"
            )
        if not 0 <= value < arity:
            raise TraceError(
                f"multiway decision {value} out of range [0, {arity})"
            )
        return value


@dataclass(frozen=True, slots=True)
class _TerminatorTables:
    """Dense per-uid terminator data for the batched walk loop.

    Everything :meth:`CFGWalker._step` recomputes per event — edge
    kinds, static targets, backwardness — resolved once per program
    into flat lists indexed by block uid.
    """

    kind: list[BranchKind]
    blocks: list[BasicBlock]  # for oracle calls
    taken: list[int | None]  # taken/jump/call static target
    fall: list[int | None]  # fall-through successor
    taken_backward: list[bool]  # backwardness of the static target edge
    targets: list[tuple[int, ...]]  # indirect/icall target sets
    target_backward: list[tuple[bool, ...]]
    address: list[int]  # block start address (return backwardness)
    branch_address: list[int]  # terminator address


class CFGWalker:
    """Executes a program under an oracle, yielding branch events."""

    def __init__(self, program: Program, oracle: BranchOracle):
        if not program.finalized:
            raise TraceError("program must be finalized before walking")
        self._program = program
        self._oracle = oracle
        self._tables: _TerminatorTables | None = None

    def walk(self, max_events: int | None = None) -> Iterator[BranchEvent]:
        """Yield events until HALT (inclusive) or ``max_events``.

        A return from the entry procedure with an empty call stack is
        treated as program termination (a halt event is emitted).
        Raises :class:`MachineLimitExceeded` when the budget runs out
        before the program halts.
        """
        program = self._program
        block = program.entry_block
        call_stack: list[int] = []
        emitted = 0

        def budget_ok() -> bool:
            return max_events is None or emitted < max_events

        while True:
            if not budget_ok():
                raise MachineLimitExceeded(emitted)
            event, next_uid = self._step(block, call_stack)
            emitted += 1
            yield event
            if next_uid is None:
                return
            block = program.block_by_uid(next_uid)

    # ------------------------------------------------------------------
    # Columnar (batched) walking
    # ------------------------------------------------------------------
    def walk_batched(
        self,
        max_events: int | None = None,
        batch_size: int = 1 << 16,
        truncate: bool = False,
        obs: Registry | None = None,
    ) -> Iterator[EventBatch]:
        """Yield the :meth:`walk` event stream as columnar batches.

        Event-for-event identical to :meth:`walk` under the same oracle
        (oracle decisions are requested in the same order), but the hot
        loop appends four scalars to flat buffers instead of building a
        :class:`BranchEvent` per transfer, with per-block terminator
        data resolved once up front.

        ``truncate=True`` ends the stream cleanly at ``max_events``
        (like ``islice`` over :meth:`walk`) instead of raising
        :class:`MachineLimitExceeded`.  ``obs`` publishes ``tracegen.*``
        instruments: events and batches produced, generation time, and
        events/second.
        """
        if batch_size < 1:
            raise TraceError("batch_size must be positive")
        registry = get_registry(obs)
        tables = self._terminator_tables()
        oracle = self._oracle
        kind = tables.kind
        blocks = tables.blocks
        taken = tables.taken
        fall = tables.fall
        taken_backward = tables.taken_backward
        targets = tables.targets
        target_backward = tables.target_backward
        address = tables.address
        branch_address = tables.branch_address

        builder = EventBatchBuilder()
        uid = self._program.entry_block.uid
        call_stack: list[int] = []
        emitted = 0
        batches = 0
        started = time.perf_counter()
        try:
            while True:
                if max_events is not None and emitted >= max_events:
                    if truncate:
                        if len(builder):
                            batches += 1
                            yield builder.build()
                        return
                    raise MachineLimitExceeded(emitted)

                term = kind[uid]
                halt = False
                if term is BranchKind.COND:
                    if oracle.decide_cond(blocks[uid]):
                        dst = taken[uid]
                        code = CODE_TAKEN
                        backward = taken_backward[uid]
                    else:
                        dst = fall[uid]
                        code = CODE_FALLTHROUGH
                        backward = False
                elif term is BranchKind.JUMP:
                    dst = taken[uid]
                    code = CODE_JUMP
                    backward = taken_backward[uid]
                elif term is BranchKind.INDIRECT:
                    index = oracle.decide_multiway(
                        blocks[uid], len(targets[uid])
                    )
                    dst = targets[uid][index]
                    code = CODE_INDIRECT
                    backward = target_backward[uid][index]
                elif term is BranchKind.CALL:
                    call_stack.append(fall[uid])
                    dst = taken[uid]
                    code = CODE_CALL
                    backward = taken_backward[uid]
                elif term is BranchKind.ICALL:
                    index = oracle.decide_multiway(
                        blocks[uid], len(targets[uid])
                    )
                    call_stack.append(fall[uid])
                    dst = targets[uid][index]
                    code = CODE_CALL
                    backward = target_backward[uid][index]
                elif term is BranchKind.RETURN:
                    if call_stack:
                        dst = call_stack.pop()
                        code = CODE_RETURN
                        backward = address[dst] <= branch_address[uid]
                    else:
                        dst = HALT_DST
                        code = CODE_JUMP
                        backward = False
                        halt = True
                elif term is BranchKind.FALLTHROUGH:
                    dst = fall[uid]
                    code = CODE_STRAIGHT
                    backward = False
                elif term is BranchKind.HALT:
                    dst = HALT_DST
                    code = CODE_JUMP
                    backward = False
                    halt = True
                else:
                    raise TraceError(f"unknown terminator kind {term!r}")

                builder.append(uid, dst, code, backward)
                emitted += 1
                if halt:
                    batches += 1
                    yield builder.build()
                    return
                if len(builder) >= batch_size:
                    batches += 1
                    yield builder.build()
                uid = dst
        finally:
            if registry.enabled:
                elapsed = time.perf_counter() - started
                registry.counter("tracegen.events").inc(emitted)
                registry.counter("tracegen.batches").inc(batches)
                registry.timer("tracegen.generate").observe(elapsed)
                if elapsed > 0:
                    registry.gauge("tracegen.events_per_sec").set(
                        emitted / elapsed
                    )

    def _terminator_tables(self) -> _TerminatorTables:
        """Build (once) the dense per-uid tables the batched loop reads."""
        if self._tables is not None:
            return self._tables
        program = self._program
        n = program.num_blocks
        tables = _TerminatorTables(
            kind=[BranchKind.HALT] * n,
            blocks=[None] * n,  # type: ignore[list-item]
            taken=[None] * n,
            fall=[None] * n,
            taken_backward=[False] * n,
            targets=[()] * n,
            target_backward=[()] * n,
            address=[0] * n,
            branch_address=[0] * n,
        )

        def is_backward(src: BasicBlock, dst_uid: int) -> bool:
            dst = program.block_by_uid(dst_uid)
            return dst.address <= src.branch_address

        for uid in range(n):
            block = program.block_by_uid(uid)
            term = block.terminator
            tables.kind[uid] = term.kind
            tables.blocks[uid] = block
            tables.address[uid] = block.address
            tables.branch_address[uid] = block.branch_address
            if term.kind in (
                BranchKind.COND,
                BranchKind.JUMP,
                BranchKind.CALL,
            ):
                tables.taken[uid] = block.taken_uid
                tables.taken_backward[uid] = is_backward(
                    block, block.taken_uid
                )
            if term.kind in (
                BranchKind.COND,
                BranchKind.CALL,
                BranchKind.ICALL,
                BranchKind.FALLTHROUGH,
            ):
                tables.fall[uid] = block.fallthrough_uid
            if term.kind in (BranchKind.INDIRECT, BranchKind.ICALL):
                tables.targets[uid] = tuple(block.target_uids)
                tables.target_backward[uid] = tuple(
                    is_backward(block, t) for t in block.target_uids
                )
        self._tables = tables
        return tables

    def _step(
        self, block: BasicBlock, call_stack: list[int]
    ) -> tuple[BranchEvent, int | None]:
        """Execute one terminator; return (event, next block uid or None)."""
        program = self._program
        term = block.terminator
        src_addr = block.branch_address

        def make(dst_uid: int, kind: EdgeKind) -> tuple[BranchEvent, int]:
            dst = program.block_by_uid(dst_uid)
            backward = (
                kind not in (EdgeKind.FALLTHROUGH, EdgeKind.STRAIGHT)
                and dst.address <= src_addr
            )
            return (
                BranchEvent(
                    src=block.uid, dst=dst_uid, kind=kind, backward=backward
                ),
                dst_uid,
            )

        if term.kind is BranchKind.COND:
            if self._oracle.decide_cond(block):
                return make(block.taken_uid, EdgeKind.TAKEN)
            return make(block.fallthrough_uid, EdgeKind.FALLTHROUGH)
        if term.kind is BranchKind.JUMP:
            return make(block.taken_uid, EdgeKind.JUMP)
        if term.kind is BranchKind.INDIRECT:
            index = self._oracle.decide_multiway(block, len(block.target_uids))
            return make(block.target_uids[index], EdgeKind.INDIRECT)
        if term.kind is BranchKind.CALL:
            call_stack.append(block.fallthrough_uid)
            return make(block.taken_uid, EdgeKind.CALL)
        if term.kind is BranchKind.ICALL:
            index = self._oracle.decide_multiway(block, len(block.target_uids))
            call_stack.append(block.fallthrough_uid)
            return make(block.target_uids[index], EdgeKind.CALL)
        if term.kind is BranchKind.RETURN:
            if not call_stack:
                return halt_event(block.uid), None
            return make(call_stack.pop(), EdgeKind.RETURN)
        if term.kind is BranchKind.FALLTHROUGH:
            return make(block.fallthrough_uid, EdgeKind.STRAIGHT)
        if term.kind is BranchKind.HALT:
            return halt_event(block.uid), None
        raise TraceError(f"unknown terminator kind {term.kind!r}")
