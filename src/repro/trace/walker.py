"""Execution of a CFG program under a branch oracle.

The walker is the bridge between static programs and dynamic traces when
no real ISA-level code exists: it executes a :class:`repro.cfg.Program`
block by block, asking a :class:`BranchOracle` to resolve every
conditional, indirect and call decision, and emits the resulting
:class:`BranchEvent` stream.  Oracles are deterministic given their seed,
so every trace in the test-suite and the experiments is reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from typing import Protocol

from repro.cfg.block import BasicBlock, BranchKind
from repro.cfg.edge import EdgeKind
from repro.cfg.program import Program
from repro.errors import MachineLimitExceeded, TraceError
from repro.trace.events import BranchEvent, halt_event


class BranchOracle(Protocol):
    """Decision source for dynamic control flow."""

    def decide_cond(self, block: BasicBlock) -> bool:
        """Whether the conditional branch ending ``block`` is taken."""

    def decide_multiway(self, block: BasicBlock, arity: int) -> int:
        """Index of the chosen target for an indirect jump or call."""


class RandomOracle:
    """Seeded random decisions with optional per-block taken bias.

    ``bias`` maps block uids to the probability that the conditional
    branch is taken; blocks not in the map use ``default_bias``.
    """

    def __init__(
        self,
        seed: int,
        bias: dict[int, float] | None = None,
        default_bias: float = 0.5,
    ):
        self._rng = random.Random(seed)
        self._bias = dict(bias or {})
        self._default_bias = default_bias

    def decide_cond(self, block: BasicBlock) -> bool:
        probability = self._bias.get(block.uid, self._default_bias)
        return self._rng.random() < probability

    def decide_multiway(self, block: BasicBlock, arity: int) -> int:
        return self._rng.randrange(arity)


class TripCountOracle:
    """Loop-aware oracle: bounded trip counts over a random base oracle.

    ``trip_counts`` maps loop-header uids to the number of consecutive
    *taken* decisions before one not-taken (loop exit); the counter then
    resets so re-entered loops iterate again.  The generator convention is
    that a loop header's taken edge enters the loop body.  Blocks without
    an entry fall back to the base oracle.
    """

    def __init__(self, base: BranchOracle, trip_counts: dict[int, int]):
        for uid, trips in trip_counts.items():
            if trips < 0:
                raise TraceError(
                    f"trip count for block {uid} must be non-negative"
                )
        self._base = base
        self._trip_counts = dict(trip_counts)
        self._remaining: dict[int, int] = {}

    def decide_cond(self, block: BasicBlock) -> bool:
        if block.uid not in self._trip_counts:
            return self._base.decide_cond(block)
        remaining = self._remaining.get(block.uid, self._trip_counts[block.uid])
        if remaining > 0:
            self._remaining[block.uid] = remaining - 1
            return True
        self._remaining[block.uid] = self._trip_counts[block.uid]
        return False

    def decide_multiway(self, block: BasicBlock, arity: int) -> int:
        return self._base.decide_multiway(block, arity)


class ScriptedOracle:
    """Replays a fixed list of decisions; raises when the script runs dry.

    Conditional decisions consume booleans; multiway decisions consume
    integers.  Used by unit tests to force exact control-flow sequences.
    """

    def __init__(self, decisions: list[bool | int]):
        self._decisions = list(decisions)
        self._cursor = 0

    def _next(self) -> bool | int:
        if self._cursor >= len(self._decisions):
            raise TraceError("scripted oracle ran out of decisions")
        value = self._decisions[self._cursor]
        self._cursor += 1
        return value

    def decide_cond(self, block: BasicBlock) -> bool:
        value = self._next()
        if not isinstance(value, bool):
            raise TraceError(
                f"expected a boolean decision for {block}, got {value!r}"
            )
        return value

    def decide_multiway(self, block: BasicBlock, arity: int) -> int:
        value = self._next()
        if isinstance(value, bool) or not isinstance(value, int):
            raise TraceError(
                f"expected an integer decision for {block}, got {value!r}"
            )
        if not 0 <= value < arity:
            raise TraceError(
                f"multiway decision {value} out of range [0, {arity})"
            )
        return value


class CFGWalker:
    """Executes a program under an oracle, yielding branch events."""

    def __init__(self, program: Program, oracle: BranchOracle):
        if not program.finalized:
            raise TraceError("program must be finalized before walking")
        self._program = program
        self._oracle = oracle

    def walk(self, max_events: int | None = None) -> Iterator[BranchEvent]:
        """Yield events until HALT (inclusive) or ``max_events``.

        A return from the entry procedure with an empty call stack is
        treated as program termination (a halt event is emitted).
        Raises :class:`MachineLimitExceeded` when the budget runs out
        before the program halts.
        """
        program = self._program
        block = program.entry_block
        call_stack: list[int] = []
        emitted = 0

        def budget_ok() -> bool:
            return max_events is None or emitted < max_events

        while True:
            if not budget_ok():
                raise MachineLimitExceeded(emitted)
            event, next_uid = self._step(block, call_stack)
            emitted += 1
            yield event
            if next_uid is None:
                return
            block = program.block_by_uid(next_uid)

    def _step(
        self, block: BasicBlock, call_stack: list[int]
    ) -> tuple[BranchEvent, int | None]:
        """Execute one terminator; return (event, next block uid or None)."""
        program = self._program
        term = block.terminator
        src_addr = block.branch_address

        def make(dst_uid: int, kind: EdgeKind) -> tuple[BranchEvent, int]:
            dst = program.block_by_uid(dst_uid)
            backward = (
                kind not in (EdgeKind.FALLTHROUGH, EdgeKind.STRAIGHT)
                and dst.address <= src_addr
            )
            return (
                BranchEvent(
                    src=block.uid, dst=dst_uid, kind=kind, backward=backward
                ),
                dst_uid,
            )

        if term.kind is BranchKind.COND:
            if self._oracle.decide_cond(block):
                return make(block.taken_uid, EdgeKind.TAKEN)
            return make(block.fallthrough_uid, EdgeKind.FALLTHROUGH)
        if term.kind is BranchKind.JUMP:
            return make(block.taken_uid, EdgeKind.JUMP)
        if term.kind is BranchKind.INDIRECT:
            index = self._oracle.decide_multiway(block, len(block.target_uids))
            return make(block.target_uids[index], EdgeKind.INDIRECT)
        if term.kind is BranchKind.CALL:
            call_stack.append(block.fallthrough_uid)
            return make(block.taken_uid, EdgeKind.CALL)
        if term.kind is BranchKind.ICALL:
            index = self._oracle.decide_multiway(block, len(block.target_uids))
            call_stack.append(block.fallthrough_uid)
            return make(block.target_uids[index], EdgeKind.CALL)
        if term.kind is BranchKind.RETURN:
            if not call_stack:
                return halt_event(block.uid), None
            return make(call_stack.pop(), EdgeKind.RETURN)
        if term.kind is BranchKind.FALLTHROUGH:
            return make(block.fallthrough_uid, EdgeKind.STRAIGHT)
        if term.kind is BranchKind.HALT:
            return halt_event(block.uid), None
        raise TraceError(f"unknown terminator kind {term.kind!r}")
