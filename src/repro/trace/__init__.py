"""Execution traces: branch events, paths, extraction and recording.

The pipeline is::

    Program  --walker/ISA-->  BranchEvent stream
             --PathExtractor-->  PathOccurrence stream
             --record_path_trace-->  PathTrace (ids + PathTable)

Workload surrogates may synthesize a :class:`PathTrace` directly from a
stochastic path model; everything downstream is agnostic to the origin.
"""

from repro.trace.batch import EventBatch, EventBatchBuilder
from repro.trace.columnar import find_cuts
from repro.trace.events import HALT_DST, BranchEvent, halt_event
from repro.trace.extractor import (
    PathExtractor,
    PathOccurrence,
    PathStream,
    extract_paths,
)
from repro.trace.io import load_trace, save_trace
from repro.trace.path import Path, PathSignature, PathTable, SignatureRegister
from repro.trace.recorder import PathTrace, record_path_trace
from repro.trace.stats import TraceSummary, summarize
from repro.trace.walker import (
    BlockRandomOracle,
    BranchOracle,
    CFGWalker,
    RandomOracle,
    ScriptedOracle,
    TripCountOracle,
)

__all__ = [
    "HALT_DST",
    "BlockRandomOracle",
    "BranchEvent",
    "BranchOracle",
    "CFGWalker",
    "EventBatch",
    "EventBatchBuilder",
    "Path",
    "PathExtractor",
    "PathOccurrence",
    "PathSignature",
    "PathStream",
    "PathTable",
    "PathTrace",
    "RandomOracle",
    "ScriptedOracle",
    "SignatureRegister",
    "TraceSummary",
    "TripCountOracle",
    "extract_paths",
    "find_cuts",
    "halt_event",
    "load_trace",
    "save_trace",
    "record_path_trace",
    "summarize",
]
