"""Persistence for path traces.

Traces are expensive to regenerate (multi-million-event workloads) and
are the natural exchange artifact between collection and analysis, so
the library can save them to a single compressed ``.npz`` file: the
occurrence array as a numpy column plus the interning table serialized
as JSON (histories as hex strings, so signatures of any bit length —
long paths can exceed 64 bits — round-trip exactly).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.errors import TraceError
from repro.trace.path import Path, PathSignature, PathTable
from repro.trace.recorder import PathTrace

#: Format version stamped into every file.
FORMAT_VERSION = 1


def path_record(path: Path) -> dict:
    """Canonical JSON-serializable record of one path.

    Shared by the trace file format and the sweep-result cache's trace
    digest: every static attribute that can influence a downstream
    measurement is included, so two paths with equal records are
    interchangeable for any experiment.
    """
    signature = path.signature
    return {
        "start_address": signature.start_address,
        "history_hex": format(signature.history, "x"),
        "bit_count": signature.bit_count,
        "indirect_targets": list(signature.indirect_targets),
        "blocks": list(path.blocks),
        "num_instructions": path.num_instructions,
        "num_cond_branches": path.num_cond_branches,
        "num_indirect_branches": path.num_indirect_branches,
        "ends_with_backward_branch": path.ends_with_backward_branch,
    }


def _path_from_record(record: dict) -> Path:
    signature = PathSignature(
        start_address=record["start_address"],
        history=int(record["history_hex"], 16),
        bit_count=record["bit_count"],
        indirect_targets=tuple(record["indirect_targets"]),
    )
    return Path(
        signature=signature,
        blocks=tuple(record["blocks"]),
        start_uid=record["blocks"][0],
        num_instructions=record["num_instructions"],
        num_cond_branches=record["num_cond_branches"],
        num_indirect_branches=record["num_indirect_branches"],
        ends_with_backward_branch=record["ends_with_backward_branch"],
    )


def save_trace(trace: PathTrace, file: str | pathlib.Path) -> pathlib.Path:
    """Write ``trace`` to ``file`` (a ``.npz`` suffix is appended if
    missing); returns the path written."""
    target = pathlib.Path(file)
    if target.suffix != ".npz":
        target = target.with_suffix(target.suffix + ".npz")
    header = {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "paths": [path_record(path) for path in trace.table],
    }
    encoded = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(target, path_ids=trace.path_ids, header=encoded)
    return target


def load_trace(file: str | pathlib.Path) -> PathTrace:
    """Read a trace previously written by :func:`save_trace`."""
    source = pathlib.Path(file)
    if not source.exists() and source.suffix != ".npz":
        source = source.with_suffix(source.suffix + ".npz")
    if not source.exists():
        raise TraceError(f"no trace file at {source}")
    with np.load(source) as data:
        try:
            header = json.loads(bytes(data["header"]).decode("utf-8"))
            path_ids = data["path_ids"]
        except KeyError as missing:
            raise TraceError(
                f"{source} is not a repro trace file (missing {missing})"
            ) from None
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format version {version!r} in {source}"
        )
    table = PathTable()
    for record in header["paths"]:
        table.intern(_path_from_record(record))
    return PathTrace(table, path_ids, name=header.get("name", "trace"))
