"""Branch events: the raw unit of an execution trace.

A program execution is viewed as the sequence of its control transfers.
Each :class:`BranchEvent` records one transfer between two basic blocks,
together with the classification the path extractor needs: the edge kind
(taken/fall-through/jump/indirect/call/return) and whether the transfer is
*backward* in the address space.  Fall-through "transfers" of conditional
branches are explicit events (they carry the 0 history bit); straight-line
execution inside a block produces no events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.edge import EdgeKind


@dataclass(frozen=True, slots=True)
class BranchEvent:
    """One dynamic control transfer.

    Attributes
    ----------
    src:
        Uid of the block whose terminator executed.
    dst:
        Uid of the block control transferred to (``-1`` for HALT).
    kind:
        Edge classification; drives history bits and call accounting.
    backward:
        Whether the transfer is a *backward taken branch* in the paper's
        sense: the target address does not exceed the branch instruction's
        address.  Fall-through transfers are never backward.
    """

    src: int
    dst: int
    kind: EdgeKind
    backward: bool

    @property
    def history_bit(self) -> int | None:
        """The bit-tracing history bit: 1 taken, 0 fall-through, else None."""
        if self.kind is EdgeKind.TAKEN:
            return 1
        if self.kind is EdgeKind.FALLTHROUGH:
            return 0
        return None

    @property
    def is_indirect(self) -> bool:
        """Whether the transfer's target was computed at run time."""
        return self.kind is EdgeKind.INDIRECT

    @property
    def is_call(self) -> bool:
        """Whether the transfer enters a procedure."""
        return self.kind is EdgeKind.CALL

    @property
    def is_return(self) -> bool:
        """Whether the transfer leaves a procedure."""
        return self.kind is EdgeKind.RETURN


#: Sentinel destination uid used by HALT events.
HALT_DST = -1


def halt_event(src: int) -> BranchEvent:
    """The synthetic event ending a trace when the program halts."""
    return BranchEvent(src=src, dst=HALT_DST, kind=EdgeKind.JUMP, backward=False)
