"""Columnar branch-event batches: the event stream as numpy columns.

:class:`BranchEvent` objects are the reference representation of a
trace, but moving one Python object per control transfer costs millions
of allocations on the workloads the §4 overhead comparison and the
extended experiments run.  :class:`EventBatch` stores the same stream as
four contiguous numpy columns (``src``, ``dst``, ``kind``, ``backward``)
so producers (``Machine.run_batched``, ``CFGWalker.walk_batched``) can
fill flat buffers in a tight loop and consumers (the path extractor,
the §4 profilers) can segment and count with vectorized masks.

The bridge is lossless in both directions: ``EventBatch.from_events``
packs any event iterable, and iterating a batch yields the exact
:class:`BranchEvent` objects it was packed from.  Edge kinds travel as
small integer codes (:data:`KIND_CODE` / :data:`CODE_KIND`); the codes
are an in-memory encoding, not a serialization format.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.cfg.edge import EdgeKind
from repro.errors import TraceError
from repro.trace.events import BranchEvent

#: Dense integer codes for :class:`~repro.cfg.edge.EdgeKind`, in a fixed
#: order so batches built by different producers agree.
CODE_TAKEN = 0
CODE_FALLTHROUGH = 1
CODE_STRAIGHT = 2
CODE_JUMP = 3
CODE_INDIRECT = 4
CODE_CALL = 5
CODE_RETURN = 6

#: EdgeKind -> code.
KIND_CODE: dict[EdgeKind, int] = {
    EdgeKind.TAKEN: CODE_TAKEN,
    EdgeKind.FALLTHROUGH: CODE_FALLTHROUGH,
    EdgeKind.STRAIGHT: CODE_STRAIGHT,
    EdgeKind.JUMP: CODE_JUMP,
    EdgeKind.INDIRECT: CODE_INDIRECT,
    EdgeKind.CALL: CODE_CALL,
    EdgeKind.RETURN: CODE_RETURN,
}

#: code -> EdgeKind (indexable by code).
CODE_KIND: tuple[EdgeKind, ...] = (
    EdgeKind.TAKEN,
    EdgeKind.FALLTHROUGH,
    EdgeKind.STRAIGHT,
    EdgeKind.JUMP,
    EdgeKind.INDIRECT,
    EdgeKind.CALL,
    EdgeKind.RETURN,
)


class EventBatch:
    """A run of branch events as four aligned columns.

    Attributes
    ----------
    src / dst:
        ``int64`` block uids, one entry per event (``dst`` is
        :data:`~repro.trace.events.HALT_DST` for halt events).
    kind:
        ``uint8`` edge-kind codes (:data:`KIND_CODE`).
    backward:
        ``bool`` backward-taken-branch flags.
    """

    __slots__ = ("src", "dst", "kind", "backward")

    def __init__(
        self,
        src: np.ndarray | Sequence[int],
        dst: np.ndarray | Sequence[int],
        kind: np.ndarray | Sequence[int],
        backward: np.ndarray | Sequence[bool],
    ):
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        self.kind = np.asarray(kind, dtype=np.uint8)
        self.backward = np.asarray(backward, dtype=bool)
        n = len(self.src)
        for name in ("src", "dst", "kind", "backward"):
            column = getattr(self, name)
            if column.ndim != 1:
                raise TraceError(f"event column {name!r} must be 1-D")
            if len(column) != n:
                raise TraceError(
                    f"event column {name!r} has {len(column)} entries, "
                    f"expected {n}"
                )
        if n and self.kind.max() >= len(CODE_KIND):
            raise TraceError("event batch contains an unknown kind code")

    # ------------------------------------------------------------------
    # Bridges to and from the object stream
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: Iterable[BranchEvent]) -> "EventBatch":
        """Pack an event iterable into columns (lossless)."""
        src: list[int] = []
        dst: list[int] = []
        kind: list[int] = []
        backward: list[bool] = []
        code = KIND_CODE
        for event in events:
            src.append(event.src)
            dst.append(event.dst)
            kind.append(code[event.kind])
            backward.append(event.backward)
        return cls(src, dst, kind, backward)

    def to_events(self) -> list[BranchEvent]:
        """Unpack into a list of :class:`BranchEvent` (lossless)."""
        return list(self)

    def __iter__(self) -> Iterator[BranchEvent]:
        kinds = CODE_KIND
        for s, d, k, b in zip(
            self.src.tolist(),
            self.dst.tolist(),
            self.kind.tolist(),
            self.backward.tolist(),
        ):
            yield BranchEvent(src=s, dst=d, kind=kinds[k], backward=b)

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    @classmethod
    def concat(cls, batches: Sequence["EventBatch"]) -> "EventBatch":
        """Concatenate batches in order (empty input gives an empty batch)."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        return cls(
            np.concatenate([b.src for b in batches]),
            np.concatenate([b.dst for b in batches]),
            np.concatenate([b.kind for b in batches]),
            np.concatenate([b.backward for b in batches]),
        )

    @classmethod
    def empty(cls) -> "EventBatch":
        """A zero-event batch."""
        return cls(
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0, np.uint8),
            np.empty(0, bool),
        )

    def slice(self, start: int, stop: int) -> "EventBatch":
        """A view batch over events ``[start, stop)`` (shares memory)."""
        return EventBatch(
            self.src[start:stop],
            self.dst[start:stop],
            self.kind[start:stop],
            self.backward[start:stop],
        )

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total memory footprint of the columns."""
        return (
            self.src.nbytes
            + self.dst.nbytes
            + self.kind.nbytes
            + self.backward.nbytes
        )

    def __len__(self) -> int:
        return len(self.src)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventBatch):
            return NotImplemented
        return (
            np.array_equal(self.src, other.src)
            and np.array_equal(self.dst, other.dst)
            and np.array_equal(self.kind, other.kind)
            and np.array_equal(self.backward, other.backward)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventBatch(events={len(self)})"


class EventBatchBuilder:
    """Append-only buffer the batched producers fill in their hot loop.

    Appends write directly into preallocated numpy columns; when the
    buffer is full it doubles (the growth path preserves every column's
    dtype).  :meth:`build` publishes the filled prefix as an
    :class:`EventBatch` and resets the cursor so the same storage is
    reused for the next batch — which is exactly why the published batch
    *copies* the prefix: a view would alias storage that later appends
    overwrite, silently corrupting batches already handed to consumers.
    The no-alias contract is pinned by a regression test.

    Parameters
    ----------
    capacity:
        Initial number of event slots (grows by doubling as needed).
    """

    __slots__ = ("_src", "_dst", "_kind", "_backward", "_length")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise TraceError("builder capacity must be positive")
        self._src = np.empty(capacity, dtype=np.int64)
        self._dst = np.empty(capacity, dtype=np.int64)
        self._kind = np.empty(capacity, dtype=np.uint8)
        self._backward = np.empty(capacity, dtype=bool)
        self._length = 0

    @property
    def capacity(self) -> int:
        """Current number of allocated event slots."""
        return len(self._src)

    def _grow(self) -> None:
        for name in ("_src", "_dst", "_kind", "_backward"):
            column = getattr(self, name)
            grown = np.empty(2 * len(column), dtype=column.dtype)
            grown[: len(column)] = column
            setattr(self, name, grown)

    def append(self, src: int, dst: int, kind_code: int, backward: bool) -> None:
        index = self._length
        if index == len(self._src):
            self._grow()
        self._src[index] = src
        self._dst[index] = dst
        self._kind[index] = kind_code
        self._backward[index] = backward
        self._length = index + 1

    def __len__(self) -> int:
        return self._length

    def build(self) -> EventBatch:
        """Freeze the buffered events into a batch and reset.

        The returned batch owns copies of the filled prefix; the
        builder's storage is retained and reused, so no sequence of
        later appends or builds can mutate a batch already published.
        """
        n = self._length
        batch = EventBatch(
            self._src[:n].copy(),
            self._dst[:n].copy(),
            self._kind[:n].copy(),
            self._backward[:n].copy(),
        )
        self._length = 0
        return batch
