"""Reproduction of *Software Profiling for Hot Path Prediction: Less is
More* (Duesterwald & Bala, ASPLOS 2000).

The library provides:

* :mod:`repro.cfg` — control-flow graph substrate (blocks, procedures,
  programs, analyses, Ball–Larus numbering);
* :mod:`repro.isa` — a small register machine whose interpreter emits
  branch-event traces from real programs;
* :mod:`repro.trace` — branch events, the interprocedural forward-path
  definition, extraction and recorded path traces;
* :mod:`repro.profiling` — Ball–Larus, bit-tracing and k-bounded path
  profilers plus edge/block baselines and overhead accounting;
* :mod:`repro.prediction` — online hot-path predictors: path-profile
  based and the paper's NET (Next Executing Tail) scheme;
* :mod:`repro.metrics` — the paper's abstract prediction-quality metrics
  (hit rate, noise, missed opportunity cost);
* :mod:`repro.workloads` — calibrated SPECint95/deltablue surrogates and
  phased workloads;
* :mod:`repro.dynamo` — a cost-model simulator of the Dynamo dynamic
  optimizer;
* :mod:`repro.experiments` — drivers regenerating every table and figure
  of the paper's evaluation.

Quickstart::

    from repro.workloads import load_benchmark
    from repro.prediction import NETPredictor
    from repro.metrics import evaluate_prediction, hot_path_set

    trace = load_benchmark("compress").trace()
    hot = hot_path_set(trace, fraction=0.001)
    outcome = NETPredictor(delay=50).run(trace)
    quality = evaluate_prediction(trace, hot, outcome)
    print(quality.hit_rate, quality.noise_rate)
"""

__version__ = "1.0.0"
