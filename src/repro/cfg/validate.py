"""Structural validation of finalized programs.

Validation catches construction mistakes early: dangling labels are caught
during finalization, so this pass focuses on reachability and shape
problems that would otherwise surface as confusing behaviour deep inside
the trace extractor or the workload generators.
"""

from __future__ import annotations

from repro.cfg.analysis import intraprocedural_successors, reachable_from
from repro.cfg.block import BranchKind
from repro.cfg.program import Program
from repro.errors import CFGValidationError


def validate_program(program: Program) -> None:
    """Raise :class:`CFGValidationError` listing every structural finding.

    Checks performed:

    * the program was finalized;
    * every block of every procedure is intraprocedurally reachable from
      its procedure's entry (catches mis-wired builders; whole procedures
      may legitimately be uncalled, mirroring dead functions in real
      binaries);
    * at least one ``HALT`` is reachable from the program entry (the
      program can terminate);
    * every indirect terminator has at least one target.
    """
    findings: list[str] = []
    if not program.finalized:
        raise CFGValidationError(["program is not finalized"])

    for proc in program.procedures.values():
        succs = intraprocedural_successors(program, proc)
        reachable_local = reachable_from(proc.entry.uid, succs)
        for block in proc.blocks:
            if block.uid not in reachable_local:
                findings.append(
                    f"block {block.proc_name}.{block.label} is unreachable "
                    f"within its procedure"
                )

    halts = [
        block
        for block in program.blocks
        if block.terminator.kind is BranchKind.HALT
    ]
    if not halts:
        findings.append("program has no HALT block")
    else:
        reachable_global = _reachable_uids(program)
        if not any(block.uid in reachable_global for block in halts):
            findings.append(
                "no HALT block is reachable: the program cannot stop"
            )

    for block in program.blocks:
        term = block.terminator
        if term.kind is BranchKind.INDIRECT and not block.target_uids:
            findings.append(
                f"indirect jump in {block.proc_name}.{block.label} has no "
                f"targets"
            )
        if term.kind is BranchKind.ICALL and not block.target_uids:
            findings.append(
                f"indirect call in {block.proc_name}.{block.label} has no "
                f"callees"
            )

    if findings:
        raise CFGValidationError(findings)


def _reachable_uids(program: Program) -> set[int]:
    """Blocks reachable from the entry along any edge kind."""
    seen: set[int] = set()
    stack = [program.entry_block.uid]
    while stack:
        uid = stack.pop()
        if uid in seen:
            continue
        seen.add(uid)
        for edge in program.out_edges(uid):
            if edge.dst not in seen:
                stack.append(edge.dst)
    return seen
