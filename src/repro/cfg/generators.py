"""Seeded random generation of structured control-flow graphs.

The generator builds programs from a tree of structured regions — straight
blocks, if/else diamonds, loops, indirect switches, and calls — then emits
the blocks in layout order so that the only backward branches are loop back
edges.  This gives the workload surrogates and the property-based tests a
supply of realistic CFGs whose loop structure (and therefore path-head
population) is known by construction.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

from repro.cfg.builder import ProcedureBuilder, ProgramBuilder
from repro.cfg.program import Program
from repro.errors import CFGError


@dataclass
class GeneratorParams:
    """Knobs controlling the shape of generated procedures.

    The element weights choose what each region slot becomes; depth limits
    stop the recursion.  All sizes are in instruction slots.
    """

    max_depth: int = 3
    min_elements: int = 1
    max_elements: int = 4
    block_size_min: int = 2
    block_size_max: int = 8
    weight_simple: float = 4.0
    weight_diamond: float = 2.0
    weight_loop: float = 1.5
    weight_switch: float = 0.5
    weight_call: float = 0.5
    switch_arms_min: int = 2
    switch_arms_max: int = 4
    #: Procedures the generator may emit calls to (besides generated ones).
    callees: tuple[str, ...] = ()

    def element_kinds(self) -> list[tuple[str, float]]:
        """(kind, weight) pairs for region-element sampling."""
        return [
            ("simple", self.weight_simple),
            ("diamond", self.weight_diamond),
            ("loop", self.weight_loop),
            ("switch", self.weight_switch),
            ("call", self.weight_call),
        ]


# ----------------------------------------------------------------------
# Region tree
# ----------------------------------------------------------------------
@dataclass
class _Region:
    """A sequence of structured elements."""

    elements: list["_Element"] = field(default_factory=list)


@dataclass
class _Element:
    kind: str
    label: str
    size: int = 1
    sub_regions: list[_Region] = field(default_factory=list)
    callee: str | None = None
    latch_label: str | None = None


class _LabelFactory:
    """Deterministic procedure-local label supply."""

    def __init__(self) -> None:
        self._counter = 0

    def fresh(self, prefix: str) -> str:
        label = f"{prefix}{self._counter}"
        self._counter += 1
        return label


def _sample_kind(rng: random.Random, params: GeneratorParams, depth: int) -> str:
    kinds = params.element_kinds()
    if depth >= params.max_depth:
        kinds = [(kind, w) for kind, w in kinds if kind in ("simple", "call")]
    if not params.callees:
        kinds = [(kind, w) for kind, w in kinds if kind != "call"]
    total = sum(weight for _, weight in kinds)
    pick = rng.uniform(0.0, total)
    for kind, weight in kinds:
        pick -= weight
        if pick <= 0:
            return kind
    return kinds[-1][0]


def _build_region(
    rng: random.Random,
    params: GeneratorParams,
    labels: _LabelFactory,
    depth: int,
) -> _Region:
    region = _Region()
    count = rng.randint(params.min_elements, params.max_elements)
    for _ in range(count):
        kind = _sample_kind(rng, params, depth)
        size = rng.randint(params.block_size_min, params.block_size_max)
        element = _Element(kind=kind, label=labels.fresh("b"), size=size)
        if kind == "diamond":
            element.sub_regions = [
                _build_region(rng, params, labels, depth + 1),
                _build_region(rng, params, labels, depth + 1),
            ]
        elif kind == "loop":
            element.sub_regions = [_build_region(rng, params, labels, depth + 1)]
            element.latch_label = labels.fresh("latch")
        elif kind == "switch":
            arms = rng.randint(params.switch_arms_min, params.switch_arms_max)
            element.sub_regions = [
                _build_region(rng, params, labels, depth + 1)
                for _ in range(arms)
            ]
        elif kind == "call":
            element.callee = rng.choice(list(params.callees))
        region.elements.append(element)
    return region


# ----------------------------------------------------------------------
# Emission (layout order)
# ----------------------------------------------------------------------
def _entry_label(region: _Region, cont: str) -> str:
    if region.elements:
        return region.elements[0].label
    return cont


def _emit_region(pb: ProcedureBuilder, region: _Region, cont: str) -> None:
    """Emit the blocks of ``region``; control leaves towards ``cont``."""
    elements = region.elements
    for index, element in enumerate(elements):
        next_label = (
            elements[index + 1].label if index + 1 < len(elements) else cont
        )
        _emit_element(pb, element, next_label)


def _emit_element(pb: ProcedureBuilder, element: _Element, cont: str) -> None:
    if element.kind == "simple":
        pb.block(element.label, size=element.size).fallthrough(cont)
    elif element.kind == "call":
        pb.block(element.label, size=element.size).call(
            element.callee, then=cont
        )
    elif element.kind == "diamond":
        then_region, else_region = element.sub_regions
        pb.block(element.label, size=element.size).cond(
            taken=_entry_label(then_region, cont),
            fallthrough=_entry_label(else_region, cont),
        )
        _emit_region(pb, then_region, cont)
        _emit_region(pb, else_region, cont)
    elif element.kind == "loop":
        (body,) = element.sub_regions
        body_entry = _entry_label(body, element.latch_label)
        pb.block(element.label, size=element.size).cond(
            taken=body_entry, fallthrough=cont
        )
        _emit_region(pb, body, element.latch_label)
        pb.block(element.latch_label, size=1).jump(element.label)
    elif element.kind == "switch":
        arm_entries = []
        for arm in element.sub_regions:
            arm_entries.append(_entry_label(arm, cont))
        pb.block(element.label, size=element.size).indirect(*arm_entries)
        for arm in element.sub_regions:
            _emit_region(pb, arm, cont)
    else:  # pragma: no cover - _build_region only produces known kinds
        raise CFGError(f"unknown element kind {element.kind!r}")


def generate_procedure(
    pb: ProcedureBuilder,
    rng: random.Random,
    params: GeneratorParams,
    terminal: str = "ret",
) -> None:
    """Fill ``pb`` with a random structured body.

    ``terminal`` selects the final block's terminator: ``"ret"`` for a
    callable procedure, ``"halt"`` for a program entry.
    """
    labels = _LabelFactory()
    region = _build_region(rng, params, labels, depth=0)
    exit_label = labels.fresh("exit")
    _emit_region(pb, region, exit_label)
    final = pb.block(exit_label, size=1)
    if terminal == "ret":
        final.ret()
    elif terminal == "halt":
        final.halt()
    else:
        raise CFGError(f"unknown terminal kind {terminal!r}")


def generate_program(
    seed: int,
    name: str = "generated",
    num_procedures: int = 3,
    params: GeneratorParams | None = None,
) -> Program:
    """Generate a whole program with ``num_procedures`` procedures.

    ``main`` may call the helper procedures (``proc1`` … ``procN``);
    helpers may call later helpers, keeping the call graph acyclic so
    generated programs always terminate under bounded loop oracles.
    """
    rng = random.Random(seed)
    base = params or GeneratorParams()
    builder = ProgramBuilder(name=name)

    helper_names = [f"proc{i}" for i in range(1, num_procedures)]
    for index in range(num_procedures - 1, -1, -1):
        proc_name = "main" if index == 0 else helper_names[index - 1]
        callable_helpers = tuple(helper_names[index:]) if index else tuple(
            helper_names
        )
        proc_params = dataclasses.replace(base, callees=callable_helpers)
        generate_procedure(
            builder.procedure(proc_name),
            rng,
            proc_params,
            terminal="halt" if proc_name == "main" else "ret",
        )
    return builder.build()
