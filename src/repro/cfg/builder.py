"""Fluent construction of control-flow graphs.

Example
-------
A two-path loop (blocks A..D, loop back edge D→A)::

    builder = ProgramBuilder("demo")
    main = builder.procedure("main")
    main.block("A", size=3).cond(taken="B", fallthrough="C")
    main.block("B", size=2).jump("D")
    main.block("C", size=5).fallthrough("D")
    main.block("D", size=2).cond(taken="A", fallthrough="exit")
    main.block("exit", size=1).halt()
    program = builder.build()

Blocks are laid out in declaration order; ``D``'s taken branch targets the
earlier block ``A`` and is therefore a *backward* branch, making ``A`` a
potential path head.
"""

from __future__ import annotations

from repro.cfg.block import BasicBlock, BranchKind, Terminator
from repro.cfg.procedure import Procedure
from repro.cfg.program import Program
from repro.cfg.validate import validate_program
from repro.errors import CFGError


class BlockBuilder:
    """Pending basic block: created by :meth:`ProcedureBuilder.block`,
    completed by exactly one terminator call."""

    def __init__(self, proc_builder: "ProcedureBuilder", label: str, size: int):
        self._proc_builder = proc_builder
        self._label = label
        self._size = size
        self._terminated = False

    def _finish(self, terminator: Terminator) -> "ProcedureBuilder":
        if self._terminated:
            raise CFGError(
                f"block {self._label!r} already has a terminator"
            )
        self._terminated = True
        block = BasicBlock(
            proc_name=self._proc_builder.name,
            label=self._label,
            size=self._size,
            terminator=terminator,
        )
        self._proc_builder._append(block)
        return self._proc_builder

    def cond(self, taken: str, fallthrough: str) -> "ProcedureBuilder":
        """End the block with a two-way conditional branch."""
        return self._finish(
            Terminator(
                BranchKind.COND, taken_label=taken, fallthrough_label=fallthrough
            )
        )

    def jump(self, target: str) -> "ProcedureBuilder":
        """End the block with an unconditional direct jump."""
        return self._finish(Terminator(BranchKind.JUMP, taken_label=target))

    def indirect(self, *targets: str) -> "ProcedureBuilder":
        """End the block with an indirect jump over ``targets``."""
        return self._finish(
            Terminator(BranchKind.INDIRECT, targets=tuple(targets))
        )

    def call(self, callee: str, then: str) -> "ProcedureBuilder":
        """End the block with a direct call; control resumes at ``then``."""
        return self._finish(
            Terminator(BranchKind.CALL, callee=callee, fallthrough_label=then)
        )

    def icall(self, callees: tuple[str, ...], then: str) -> "ProcedureBuilder":
        """End the block with an indirect call over possible ``callees``."""
        return self._finish(
            Terminator(
                BranchKind.ICALL,
                callees=tuple(callees),
                fallthrough_label=then,
            )
        )

    def ret(self) -> "ProcedureBuilder":
        """End the block with a procedure return."""
        return self._finish(Terminator(BranchKind.RETURN))

    def fallthrough(self, successor: str) -> "ProcedureBuilder":
        """End the block by falling through to ``successor``."""
        return self._finish(
            Terminator(BranchKind.FALLTHROUGH, fallthrough_label=successor)
        )

    def halt(self) -> "ProcedureBuilder":
        """End the block (and the program) with a halt."""
        return self._finish(Terminator(BranchKind.HALT))


class ProcedureBuilder:
    """Accumulates blocks for one procedure in layout order."""

    def __init__(self, program_builder: "ProgramBuilder", name: str):
        self._program_builder = program_builder
        self.name = name
        self._procedure = Procedure(name)
        self._open_block: str | None = None

    def block(self, label: str, size: int = 1) -> BlockBuilder:
        """Start a new block; it must be terminated before ``build``."""
        if self._open_block is not None:
            raise CFGError(
                f"block {self._open_block!r} in {self.name!r} was never "
                f"terminated"
            )
        self._open_block = label
        return BlockBuilder(self, label, size)

    def _append(self, block: BasicBlock) -> None:
        self._procedure.add(block)
        self._open_block = None

    def done(self) -> Procedure:
        """Finish the procedure and hand back the built object."""
        if self._open_block is not None:
            raise CFGError(
                f"block {self._open_block!r} in {self.name!r} was never "
                f"terminated"
            )
        if not self._procedure.blocks:
            raise CFGError(f"procedure {self.name!r} has no blocks")
        return self._procedure


class ProgramBuilder:
    """Top-level builder producing a finalized, validated :class:`Program`."""

    def __init__(self, name: str = "program", entry_proc: str = "main"):
        self._name = name
        self._entry_proc = entry_proc
        self._procedures: dict[str, ProcedureBuilder] = {}

    def procedure(self, name: str) -> ProcedureBuilder:
        """Open (or reopen) the builder for procedure ``name``."""
        if name not in self._procedures:
            self._procedures[name] = ProcedureBuilder(self, name)
        return self._procedures[name]

    def build(self, validate: bool = True) -> Program:
        """Finalize every procedure, lay out the program and validate it."""
        program = Program(name=self._name, entry_proc=self._entry_proc)
        for proc_builder in self._procedures.values():
            program.add_procedure(proc_builder.done())
        program.finalize()
        if validate:
            validate_program(program)
        return program
