"""Whole-program control-flow graphs.

A :class:`Program` owns a set of procedures, lays them out in a flat address
space (one address unit per instruction), resolves symbolic labels to block
uids, derives the full edge set, and answers the address-direction queries
("is this branch backward?", "which blocks are potential path heads?") that
the NET scheme and the path extractor are built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.block import BasicBlock, BranchKind, Terminator
from repro.cfg.edge import Edge, EdgeKind
from repro.cfg.procedure import Procedure
from repro.errors import CFGError


@dataclass
class Program:
    """A finalized multi-procedure control-flow graph.

    Construct programs through :class:`repro.cfg.builder.ProgramBuilder`
    (or the generators in :mod:`repro.cfg.generators`); the builder calls
    :meth:`finalize` which assigns uids and addresses, resolves labels and
    computes the edge set.  A finalized program is immutable by convention.
    """

    procedures: dict[str, Procedure] = field(default_factory=dict)
    entry_proc: str = "main"
    name: str = "program"

    def __post_init__(self) -> None:
        self._blocks_by_uid: list[BasicBlock] = []
        self._blocks_by_address: dict[int, BasicBlock] = {}
        self._edges: list[Edge] = []
        self._edges_by_src: dict[int, list[Edge]] = {}
        self._call_sites: dict[str, list[BasicBlock]] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_procedure(self, proc: Procedure) -> Procedure:
        """Register ``proc``; names must be unique and the program not final."""
        if self._finalized:
            raise CFGError("cannot add procedures to a finalized program")
        if proc.name in self.procedures:
            raise CFGError(f"duplicate procedure {proc.name!r}")
        self.procedures[proc.name] = proc
        return proc

    def finalize(self) -> "Program":
        """Assign uids/addresses, resolve labels, and derive edges.

        Procedures are laid out in insertion order, the entry procedure
        first; blocks keep their procedure-local layout order.  Returns
        ``self`` for chaining.
        """
        if self._finalized:
            return self
        if self.entry_proc not in self.procedures:
            raise CFGError(
                f"entry procedure {self.entry_proc!r} is not defined"
            )
        ordered = [self.procedures[self.entry_proc]]
        ordered.extend(
            proc
            for name, proc in self.procedures.items()
            if name != self.entry_proc
        )

        uid = 0
        address = 0
        for proc in ordered:
            if not proc.blocks:
                raise CFGError(f"procedure {proc.name!r} has no blocks")
            for block in proc.blocks:
                block.uid = uid
                block.address = address
                self._blocks_by_uid.append(block)
                self._blocks_by_address[address] = block
                uid += 1
                address += block.size

        for proc in ordered:
            for block in proc.blocks:
                self._resolve_block(proc, block)

        self._collect_call_sites()
        self._derive_edges()
        self._finalized = True
        return self

    def _resolve_block(self, proc: Procedure, block: BasicBlock) -> None:
        """Resolve a block's symbolic labels to uids."""
        term = block.terminator
        if term.kind is BranchKind.COND:
            block.taken_uid = proc.block(term.taken_label).uid
            block.fallthrough_uid = proc.block(term.fallthrough_label).uid
        elif term.kind is BranchKind.JUMP:
            block.taken_uid = proc.block(term.taken_label).uid
        elif term.kind is BranchKind.INDIRECT:
            block.target_uids = tuple(
                proc.block(label).uid for label in term.targets
            )
        elif term.kind is BranchKind.CALL:
            callee = self._callee(term.callee)
            block.taken_uid = callee.entry.uid
            block.fallthrough_uid = proc.block(term.fallthrough_label).uid
        elif term.kind is BranchKind.ICALL:
            block.target_uids = tuple(
                self._callee(name).entry.uid for name in term.callees
            )
            block.fallthrough_uid = proc.block(term.fallthrough_label).uid
        elif term.kind is BranchKind.FALLTHROUGH:
            block.fallthrough_uid = proc.block(term.fallthrough_label).uid
        # RETURN and HALT have no static operands.

    def _callee(self, name: str | None) -> Procedure:
        if name is None or name not in self.procedures:
            raise CFGError(f"call to undefined procedure {name!r}")
        return self.procedures[name]

    def _collect_call_sites(self) -> None:
        """Map each procedure name to the blocks that may call it."""
        for block in self._blocks_by_uid:
            term = block.terminator
            if term.kind is BranchKind.CALL:
                self._call_sites.setdefault(term.callee, []).append(block)
            elif term.kind is BranchKind.ICALL:
                for callee in term.callees:
                    self._call_sites.setdefault(callee, []).append(block)

    def _derive_edges(self) -> None:
        for block in self._blocks_by_uid:
            for edge in self._edges_of(block):
                self._edges.append(edge)
                self._edges_by_src.setdefault(edge.src, []).append(edge)

    def _edges_of(self, block: BasicBlock) -> list[Edge]:
        term = block.terminator
        src_addr = block.branch_address
        edges: list[Edge] = []

        def backward(dst: BasicBlock) -> bool:
            return dst.address <= src_addr

        def cross(dst: BasicBlock) -> bool:
            return dst.proc_name != block.proc_name

        if term.kind is BranchKind.COND:
            taken = self.block_by_uid(block.taken_uid)
            fallthrough = self.block_by_uid(block.fallthrough_uid)
            edges.append(
                Edge(block.uid, taken.uid, EdgeKind.TAKEN, backward(taken))
            )
            edges.append(
                Edge(
                    block.uid,
                    fallthrough.uid,
                    EdgeKind.FALLTHROUGH,
                    False,
                )
            )
        elif term.kind is BranchKind.JUMP:
            taken = self.block_by_uid(block.taken_uid)
            edges.append(
                Edge(block.uid, taken.uid, EdgeKind.JUMP, backward(taken))
            )
        elif term.kind is BranchKind.INDIRECT:
            for dst_uid in block.target_uids:
                dst = self.block_by_uid(dst_uid)
                edges.append(
                    Edge(block.uid, dst.uid, EdgeKind.INDIRECT, backward(dst))
                )
        elif term.kind in (BranchKind.CALL, BranchKind.ICALL):
            callee_uids = (
                (block.taken_uid,)
                if term.kind is BranchKind.CALL
                else block.target_uids
            )
            for dst_uid in callee_uids:
                dst = self.block_by_uid(dst_uid)
                edges.append(
                    Edge(
                        block.uid,
                        dst.uid,
                        EdgeKind.CALL,
                        backward(dst),
                        interprocedural=cross(dst),
                    )
                )
        elif term.kind is BranchKind.FALLTHROUGH:
            dst = self.block_by_uid(block.fallthrough_uid)
            edges.append(
                Edge(block.uid, dst.uid, EdgeKind.STRAIGHT, False)
            )
        elif term.kind is BranchKind.RETURN:
            for call_site in self._call_sites.get(block.proc_name, []):
                dst = self.block_by_uid(call_site.fallthrough_uid)
                edges.append(
                    Edge(
                        block.uid,
                        dst.uid,
                        EdgeKind.RETURN,
                        dst.address <= src_addr,
                        interprocedural=cross(dst),
                    )
                )
        # HALT produces no edges.
        return edges

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _require_finalized(self) -> None:
        if not self._finalized:
            raise CFGError("program is not finalized; call finalize() first")

    @property
    def finalized(self) -> bool:
        """Whether :meth:`finalize` has run."""
        return self._finalized

    @property
    def blocks(self) -> list[BasicBlock]:
        """All blocks in address order."""
        self._require_finalized()
        return list(self._blocks_by_uid)

    @property
    def num_blocks(self) -> int:
        """Total number of basic blocks."""
        self._require_finalized()
        return len(self._blocks_by_uid)

    @property
    def num_instructions(self) -> int:
        """Total number of instruction slots in the layout."""
        self._require_finalized()
        return sum(block.size for block in self._blocks_by_uid)

    @property
    def entry_block(self) -> BasicBlock:
        """Entry block of the entry procedure."""
        self._require_finalized()
        return self.procedures[self.entry_proc].entry

    def block_by_uid(self, uid: int | None) -> BasicBlock:
        """Look a block up by uid."""
        if uid is None or not 0 <= uid < len(self._blocks_by_uid):
            raise CFGError(f"no block with uid {uid!r}")
        return self._blocks_by_uid[uid]

    def block_at(self, address: int) -> BasicBlock:
        """Look a block up by its start address."""
        self._require_finalized()
        try:
            return self._blocks_by_address[address]
        except KeyError:
            raise CFGError(f"no block starts at address {address}") from None

    @property
    def edges(self) -> list[Edge]:
        """Every control-flow edge, including call and return edges."""
        self._require_finalized()
        return list(self._edges)

    def out_edges(self, uid: int) -> list[Edge]:
        """Edges leaving the block with ``uid``."""
        self._require_finalized()
        return list(self._edges_by_src.get(uid, []))

    def backward_branch_targets(self) -> set[int]:
        """Uids of blocks that are targets of some backward edge.

        These are the *potential path heads* of the NET scheme — the only
        program points where NET maintains an execution counter (paper
        §4.1/§4.2).
        """
        self._require_finalized()
        return {edge.dst for edge in self._edges if edge.backward}

    def conditional_branch_count(self) -> int:
        """Number of conditional branches — the bit-tracing profile points."""
        self._require_finalized()
        return sum(
            1
            for block in self._blocks_by_uid
            if block.terminator.kind is BranchKind.COND
        )

    def describe(self) -> str:
        """One-line structural summary, for logs and reports."""
        self._require_finalized()
        return (
            f"{self.name}: {len(self.procedures)} procedures, "
            f"{self.num_blocks} blocks, {self.num_instructions} instructions, "
            f"{len(self._edges)} edges, "
            f"{len(self.backward_branch_targets())} backward-branch targets"
        )


def single_block_program(size: int = 4) -> Program:
    """A minimal one-block program, useful as a test fixture."""
    proc = Procedure("main")
    proc.add(
        BasicBlock(
            proc_name="main",
            label="entry",
            size=size,
            terminator=Terminator(BranchKind.HALT),
        )
    )
    program = Program(name="single")
    program.add_procedure(proc)
    return program.finalize()
