"""Control-flow graph substrate.

Programs are multi-procedure CFGs laid out in a flat address space; branch
direction (forward vs backward) is determined by addresses, mirroring the
binary-level view of the paper's Dynamo system.  See
:mod:`repro.cfg.builder` for the construction API and
:mod:`repro.cfg.generators` for seeded random program generation.
"""

from repro.cfg.analysis import (
    LoopForest,
    NaturalLoop,
    compute_dominators,
    dominator_back_edges,
    intraprocedural_successors,
    natural_loops,
    procedure_loops,
)
from repro.cfg.block import BasicBlock, BranchKind, Terminator
from repro.cfg.builder import ProgramBuilder
from repro.cfg.dot import program_to_dot
from repro.cfg.edge import Edge, EdgeKind
from repro.cfg.generators import GeneratorParams, generate_program
from repro.cfg.procedure import Procedure
from repro.cfg.program import Program, single_block_program
from repro.cfg.spanning_tree import (
    BallLarusNumbering,
    number_procedure,
    number_program,
    total_static_paths,
)
from repro.cfg.validate import validate_program

__all__ = [
    "BasicBlock",
    "BallLarusNumbering",
    "BranchKind",
    "Edge",
    "EdgeKind",
    "GeneratorParams",
    "LoopForest",
    "NaturalLoop",
    "Procedure",
    "Program",
    "ProgramBuilder",
    "Terminator",
    "compute_dominators",
    "dominator_back_edges",
    "generate_program",
    "program_to_dot",
    "intraprocedural_successors",
    "natural_loops",
    "number_procedure",
    "number_program",
    "procedure_loops",
    "single_block_program",
    "total_static_paths",
    "validate_program",
]
