"""Classic intraprocedural CFG analyses.

These back the Ball–Larus instrumentation planner (which needs the acyclic
forward-path DAG of each procedure) and the workload generators (which need
loop structure to place path heads deliberately).

All analyses work on the *intraprocedural* graph of one procedure: call
terminators are treated as falling through to their continuation block
(standard practice for intraprocedural path profiling, and what Ball–Larus
assume), and return/halt blocks are sinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.block import BasicBlock, BranchKind
from repro.cfg.procedure import Procedure
from repro.cfg.program import Program
from repro.errors import CFGError


def intraprocedural_successors(
    program: Program, proc: Procedure
) -> dict[int, list[int]]:
    """Successor map over one procedure's blocks (uid → uids).

    Call blocks step to their continuation; interprocedural edges are not
    followed.  Successor lists preserve a deterministic order (taken edge
    first) so downstream numbering is stable.
    """
    succs: dict[int, list[int]] = {block.uid: [] for block in proc.blocks}
    local = set(succs)
    for block in proc.blocks:
        term = block.terminator
        if term.kind is BranchKind.COND:
            succs[block.uid] = [block.taken_uid, block.fallthrough_uid]
        elif term.kind is BranchKind.JUMP:
            succs[block.uid] = [block.taken_uid]
        elif term.kind is BranchKind.INDIRECT:
            succs[block.uid] = [
                uid for uid in block.target_uids if uid in local
            ]
        elif term.kind in (BranchKind.CALL, BranchKind.ICALL):
            succs[block.uid] = [block.fallthrough_uid]
        elif term.kind is BranchKind.FALLTHROUGH:
            succs[block.uid] = [block.fallthrough_uid]
        # RETURN / HALT are sinks intraprocedurally.
    for uid, targets in succs.items():
        succs[uid] = [t for t in targets if t in local]
    return succs


def reverse_graph(succs: dict[int, list[int]]) -> dict[int, list[int]]:
    """Predecessor map for a successor map."""
    preds: dict[int, list[int]] = {uid: [] for uid in succs}
    for src, targets in succs.items():
        for dst in targets:
            preds[dst].append(src)
    return preds


def reachable_from(entry: int, succs: dict[int, list[int]]) -> set[int]:
    """Nodes reachable from ``entry`` in ``succs``."""
    seen: set[int] = set()
    stack = [entry]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(succs.get(node, []))
    return seen


def compute_dominators(
    entry: int, succs: dict[int, list[int]]
) -> dict[int, set[int]]:
    """Dominator sets by iterative dataflow.

    ``dom[n]`` contains every node that dominates ``n`` (including ``n``).
    Unreachable nodes are excluded from the result.
    """
    reachable = reachable_from(entry, succs)
    preds = reverse_graph(succs)
    dom: dict[int, set[int]] = {entry: {entry}}
    for node in reachable - {entry}:
        dom[node] = set(reachable)

    changed = True
    while changed:
        changed = False
        for node in reachable - {entry}:
            incoming = [
                dom[p] for p in preds.get(node, []) if p in reachable
            ]
            if incoming:
                new = set.intersection(*incoming) | {node}
            else:
                new = {node}
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


@dataclass
class NaturalLoop:
    """A natural loop: header plus body, discovered from a back edge."""

    header: int
    body: set[int] = field(default_factory=set)
    back_edges: list[tuple[int, int]] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of blocks in the loop, including the header."""
        return len(self.body)


@dataclass
class LoopForest:
    """All natural loops of one procedure, with nesting depths."""

    loops: list[NaturalLoop]
    depth: dict[int, int]

    @property
    def headers(self) -> set[int]:
        """Uids of every loop header."""
        return {loop.header for loop in self.loops}

    def max_depth(self) -> int:
        """Deepest nesting level in the procedure (0 if loop-free)."""
        return max(self.depth.values(), default=0)


def dominator_back_edges(
    entry: int, succs: dict[int, list[int]]
) -> list[tuple[int, int]]:
    """Edges ``u → v`` where ``v`` dominates ``u`` — the loop back edges."""
    dom = compute_dominators(entry, succs)
    edges = []
    for src, targets in succs.items():
        if src not in dom:
            continue
        for dst in targets:
            if dst in dom.get(src, set()):
                edges.append((src, dst))
    return edges


def natural_loops(entry: int, succs: dict[int, list[int]]) -> LoopForest:
    """Discover natural loops and per-block nesting depth.

    Loops sharing a header are merged (the standard convention).  Depth of a
    block is the number of distinct loop bodies containing it.
    """
    preds = reverse_graph(succs)
    by_header: dict[int, NaturalLoop] = {}
    for src, dst in dominator_back_edges(entry, succs):
        loop = by_header.setdefault(dst, NaturalLoop(header=dst, body={dst}))
        loop.back_edges.append((src, dst))
        # Walk predecessors from the back-edge source up to the header.
        stack = [src]
        while stack:
            node = stack.pop()
            if node in loop.body:
                continue
            loop.body.add(node)
            stack.extend(preds.get(node, []))

    loops = sorted(by_header.values(), key=lambda l: (l.size, l.header))
    depth = {uid: 0 for uid in succs}
    for loop in loops:
        for uid in loop.body:
            depth[uid] += 1
    return LoopForest(loops=loops, depth=depth)


def procedure_loops(program: Program, proc_name: str) -> LoopForest:
    """Convenience wrapper: natural loops of one named procedure."""
    if proc_name not in program.procedures:
        raise CFGError(f"no procedure named {proc_name!r}")
    proc = program.procedures[proc_name]
    succs = intraprocedural_successors(program, proc)
    return natural_loops(proc.entry.uid, succs)


def acyclic_forward_dag(
    program: Program, proc: Procedure
) -> tuple[dict[int, list[int]], int, int]:
    """The Ball–Larus DAG of a procedure: (successors, entry, exit).

    Back edges (dominator-based) are removed and replaced per Ball–Larus:
    a back edge ``u → v`` contributes surrogate edges ``ENTRY → v`` and
    ``u → EXIT`` so paths ending at a backward branch and paths starting at
    its target are both representable.  Every sink (return/halt or
    back-edge source) is connected to the synthetic exit, and the synthetic
    entry is connected to the procedure entry.

    The synthetic entry and exit reuse uids ``-1`` and ``-2`` which never
    collide with real blocks.
    """
    succs = intraprocedural_successors(program, proc)
    entry_uid = proc.entry.uid
    back = set(dominator_back_edges(entry_uid, succs))

    dag: dict[int, list[int]] = {uid: [] for uid in succs}
    virtual_entry, virtual_exit = -1, -2
    dag[virtual_entry] = [entry_uid]
    dag[virtual_exit] = []

    extra_entry_targets: list[int] = []
    for src, targets in succs.items():
        for dst in targets:
            if (src, dst) in back:
                if dst not in extra_entry_targets:
                    extra_entry_targets.append(dst)
                if virtual_exit not in dag[src]:
                    dag[src].append(virtual_exit)
            else:
                dag[src].append(dst)
    for dst in extra_entry_targets:
        if dst not in dag[virtual_entry]:
            dag[virtual_entry].append(dst)

    # Sinks (no outgoing DAG edges) flow to the synthetic exit.
    for uid in list(dag):
        if uid in (virtual_entry, virtual_exit):
            continue
        if not dag[uid]:
            dag[uid] = [virtual_exit]
    return dag, virtual_entry, virtual_exit


def topological_order(dag: dict[int, list[int]], entry: int) -> list[int]:
    """Topological order of the sub-DAG reachable from ``entry``.

    Raises :class:`CFGError` if a cycle is reachable (the input was not a
    DAG).
    """
    order: list[int] = []
    state: dict[int, int] = {}  # 0 = in progress, 1 = done

    def visit(node: int) -> None:
        stack = [(node, iter(dag.get(node, [])))]
        state[node] = 0
        while stack:
            current, it = stack[-1]
            advanced = False
            for succ in it:
                if state.get(succ) == 0:
                    raise CFGError("graph contains a cycle; expected a DAG")
                if succ not in state:
                    state[succ] = 0
                    stack.append((succ, iter(dag.get(succ, []))))
                    advanced = True
                    break
            if not advanced:
                state[current] = 1
                order.append(current)
                stack.pop()

    visit(entry)
    order.reverse()
    return order


def block_map(proc: Procedure) -> dict[int, BasicBlock]:
    """uid → block map for one procedure."""
    return {block.uid: block for block in proc.blocks}
