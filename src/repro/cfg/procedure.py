"""Procedures: named, single-entry collections of basic blocks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.block import BasicBlock
from repro.errors import CFGError


@dataclass
class Procedure:
    """A procedure is a list of basic blocks in layout order.

    The first block in ``blocks`` is the procedure entry.  Labels are
    unique within the procedure; layout order determines addresses and,
    therefore, which branches are backward.
    """

    name: str
    blocks: list[BasicBlock] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise CFGError("procedure name must be non-empty")

    @property
    def entry(self) -> BasicBlock:
        """The entry block (the first block in layout order)."""
        if not self.blocks:
            raise CFGError(f"procedure {self.name!r} has no blocks")
        return self.blocks[0]

    @property
    def size(self) -> int:
        """Total number of instructions in the procedure."""
        return sum(block.size for block in self.blocks)

    def add(self, block: BasicBlock) -> BasicBlock:
        """Append ``block`` to the layout, enforcing label uniqueness."""
        if block.proc_name != self.name:
            raise CFGError(
                f"block {block.label!r} belongs to {block.proc_name!r}, "
                f"not {self.name!r}"
            )
        if block.label in self._labels():
            raise CFGError(
                f"duplicate label {block.label!r} in procedure {self.name!r}"
            )
        self.blocks.append(block)
        return block

    def block(self, label: str) -> BasicBlock:
        """Return the block with ``label``; raise :class:`CFGError` if absent."""
        for candidate in self.blocks:
            if candidate.label == label:
                return candidate
        raise CFGError(f"no block labelled {label!r} in procedure {self.name!r}")

    def has_block(self, label: str) -> bool:
        """Whether a block labelled ``label`` exists."""
        return any(candidate.label == label for candidate in self.blocks)

    def layout_successor(self, block: BasicBlock) -> BasicBlock | None:
        """The block physically following ``block``, or ``None`` at the end."""
        for index, candidate in enumerate(self.blocks):
            if candidate is block:
                if index + 1 < len(self.blocks):
                    return self.blocks[index + 1]
                return None
        raise CFGError(
            f"block {block.label!r} is not part of procedure {self.name!r}"
        )

    def _labels(self) -> set[str]:
        return {block.label for block in self.blocks}

    def __iter__(self):
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)
