"""Ball–Larus path numbering and spanning-tree instrumentation planning.

Implements the offline machinery of Ball & Larus, *Efficient Path
Profiling* (MICRO-29, 1996), which the paper uses as the representative
"sophisticated" path profiling scheme:

1. each procedure's CFG is converted to an acyclic DAG of forward paths
   (back edges replaced by surrogate entry/exit edges);
2. every DAG edge receives an integer value ``val`` such that the sum of
   ``val`` along any entry→exit path is a unique path id in
   ``[0, num_paths)``;
3. a spanning tree of the DAG (augmented with a virtual exit→entry edge)
   determines the minimal set of *chord* edges that must be instrumented;
   each chord carries an increment ``inc`` such that summing ``inc`` over
   the chords on a path reproduces the path id.

The planner exposes exactly what the reproduction needs: unique path
numbering (for the offline profile), the number of instrumentation points
(for the overhead comparison of paper §4), and encode/decode helpers used
by tests to prove the numbering is a bijection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.analysis import acyclic_forward_dag, topological_order
from repro.cfg.procedure import Procedure
from repro.cfg.program import Program
from repro.errors import CFGError


@dataclass(frozen=True)
class DagEdge:
    """One directed edge of the Ball–Larus DAG, identified by ``index``."""

    index: int
    src: int
    dst: int
    val: int


@dataclass
class BallLarusNumbering:
    """The complete numbering and instrumentation plan for one procedure."""

    proc_name: str
    virtual_entry: int
    virtual_exit: int
    num_paths: int
    edges: list[DagEdge]
    #: ``num_paths`` per DAG node (1 at the virtual exit).
    num_paths_from: dict[int, int]
    #: Edge indices chosen as chords — the instrumented edges.
    chord_indices: list[int] = field(default_factory=list)
    #: Increment per chord index.
    increments: dict[int, int] = field(default_factory=dict)

    @property
    def num_instrumented_edges(self) -> int:
        """Number of edges that require an instrumentation point."""
        return len(self.chord_indices)

    @property
    def num_edges(self) -> int:
        """Total number of DAG edges (the unoptimized instrumentation cost)."""
        return len(self.edges)

    def edges_from(self, node: int) -> list[DagEdge]:
        """Outgoing DAG edges of ``node`` in val order."""
        return sorted(
            (edge for edge in self.edges if edge.src == node),
            key=lambda edge: edge.val,
        )

    def path_id(self, nodes: list[int]) -> int:
        """Encode an entry→exit node sequence as its unique path id.

        ``nodes`` must start at the virtual entry and end at the virtual
        exit; consecutive nodes must be joined by a DAG edge.  When several
        parallel edges join a pair of nodes the minimal-``val`` edge is
        used (parallel DAG edges represent distinct paths only when they
        arise from distinct CFG edges, which the reproduction's builders
        never produce between the same pair).
        """
        if not nodes or nodes[0] != self.virtual_entry:
            raise CFGError("path must start at the virtual entry")
        if nodes[-1] != self.virtual_exit:
            raise CFGError("path must end at the virtual exit")
        total = 0
        for src, dst in zip(nodes, nodes[1:]):
            candidates = [
                edge for edge in self.edges if edge.src == src and edge.dst == dst
            ]
            if not candidates:
                raise CFGError(f"no DAG edge {src} → {dst}")
            total += min(candidates, key=lambda edge: edge.val).val
        if not 0 <= total < self.num_paths:
            raise CFGError(
                f"encoded id {total} outside [0, {self.num_paths})"
            )
        return total

    def decode(self, path_id: int) -> list[int]:
        """Decode a path id back to its entry→exit node sequence.

        Uses the classic greedy walk: at each node take the outgoing edge
        with the largest ``val`` not exceeding the remaining id.
        """
        if not 0 <= path_id < self.num_paths:
            raise CFGError(
                f"path id {path_id} outside [0, {self.num_paths})"
            )
        remaining = path_id
        node = self.virtual_entry
        sequence = [node]
        while node != self.virtual_exit:
            outgoing = self.edges_from(node)
            if not outgoing:
                raise CFGError(f"dead end at DAG node {node}")
            chosen = None
            for edge in outgoing:
                if edge.val <= remaining:
                    chosen = edge
                else:
                    break
            if chosen is None:
                raise CFGError(
                    f"no edge with val <= {remaining} at node {node}"
                )
            remaining -= chosen.val
            node = chosen.dst
            sequence.append(node)
        if remaining != 0:
            raise CFGError(f"decode left a residue of {remaining}")
        return sequence

    def chord_sum(self, nodes: list[int]) -> int:
        """Sum the chord increments along an entry→exit node sequence.

        This is what the instrumented program would compute at run time;
        tests assert it equals :meth:`path_id` for every path.
        """
        chords = set(self.chord_indices)
        total = 0
        for src, dst in zip(nodes, nodes[1:]):
            for edge in self.edges:
                if edge.src == src and edge.dst == dst:
                    if edge.index in chords:
                        total += self.increments[edge.index]
                    break
        return total


def number_procedure(program: Program, proc: Procedure) -> BallLarusNumbering:
    """Run the full Ball–Larus pipeline for one procedure."""
    dag, virtual_entry, virtual_exit = acyclic_forward_dag(program, proc)
    order = topological_order(dag, virtual_entry)

    num_paths_from: dict[int, int] = {virtual_exit: 1}
    edges: list[DagEdge] = []
    for node in reversed(order):
        if node == virtual_exit:
            continue
        running = 0
        for succ in dag.get(node, []):
            edges.append(
                DagEdge(index=len(edges), src=node, dst=succ, val=running)
            )
            running += num_paths_from.get(succ, 0)
        num_paths_from[node] = running if running else 1

    numbering = BallLarusNumbering(
        proc_name=proc.name,
        virtual_entry=virtual_entry,
        virtual_exit=virtual_exit,
        num_paths=num_paths_from.get(virtual_entry, 1),
        edges=edges,
        num_paths_from=num_paths_from,
    )
    _plan_instrumentation(numbering)
    return numbering


def _plan_instrumentation(numbering: BallLarusNumbering) -> None:
    """Select chords via a spanning tree and derive their increments.

    The virtual exit→entry edge is forced into the tree so that path ids
    equal plain chord sums with a zero-initialized register (no constant
    offset).  Tree selection prefers high-traffic edges (approximated by
    the product of path counts through the edge), which minimizes the
    number of dynamic instrumentation events in expectation.
    """
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> bool:
        ra, rb = find(a), find(b)
        if ra == rb:
            return False
        parent[ra] = rb
        return True

    # Adjacency of tree edges: node → list of (neighbor, edge, direction)
    # where direction is +1 when the edge points node → neighbor.
    tree_adj: dict[int, list[tuple[int, DagEdge, int]]] = {}

    def add_tree_edge(edge: DagEdge) -> None:
        tree_adj.setdefault(edge.src, []).append((edge.dst, edge, +1))
        tree_adj.setdefault(edge.dst, []).append((edge.src, edge, -1))

    # Force the virtual back edge exit→entry into the tree.
    virtual_edge = DagEdge(
        index=-1,
        src=numbering.virtual_exit,
        dst=numbering.virtual_entry,
        val=0,
    )
    union(numbering.virtual_exit, numbering.virtual_entry)
    add_tree_edge(virtual_edge)

    def weight(edge: DagEdge) -> int:
        src_paths = numbering.num_paths_from.get(edge.src, 1)
        dst_paths = numbering.num_paths_from.get(edge.dst, 1)
        return src_paths * dst_paths

    chords: list[DagEdge] = []
    for edge in sorted(numbering.edges, key=weight, reverse=True):
        if union(edge.src, edge.dst):
            add_tree_edge(edge)
        else:
            chords.append(edge)

    for chord in chords:
        numbering.chord_indices.append(chord.index)
        numbering.increments[chord.index] = chord.val + _tree_path_val(
            tree_adj, chord.dst, chord.src
        )


def _tree_path_val(
    tree_adj: dict[int, list[tuple[int, DagEdge, int]]],
    start: int,
    goal: int,
) -> int:
    """Signed sum of ``val`` along the unique tree path start → goal.

    Edges traversed along their direction contribute ``+val``; edges
    traversed against it contribute ``-val``.
    """
    if start == goal:
        return 0
    stack: list[tuple[int, int, int]] = [(start, -10**9, 0)]
    while stack:
        node, came_from, total = stack.pop()
        for neighbor, edge, direction in tree_adj.get(node, []):
            if neighbor == came_from:
                continue
            new_total = total + direction * edge.val
            if neighbor == goal:
                return new_total
            stack.append((neighbor, node, new_total))
    raise CFGError(f"no tree path from {start} to {goal}")


def number_program(program: Program) -> dict[str, BallLarusNumbering]:
    """Number every procedure of ``program``; keyed by procedure name."""
    return {
        name: number_procedure(program, proc)
        for name, proc in program.procedures.items()
    }


def total_static_paths(program: Program) -> int:
    """Sum of Ball–Larus path counts over all procedures.

    This is the *static* path space size — the worst-case counter table
    size for an array-based path profiler (paper §4: "may be 2^|B| in the
    worst case").
    """
    return sum(
        numbering.num_paths for numbering in number_program(program).values()
    )
