"""Control-flow edges.

Edges are derived from block terminators when a program is finalized.  They
carry the information the profiling and prediction subsystems care about:
whether the edge is *taken* (for history bits), whether it is *backward*
(for path-head discovery), and whether it crosses a procedure boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EdgeKind(enum.Enum):
    """How control flows along an edge."""

    #: Taken side of a conditional branch.
    TAKEN = "taken"
    #: Fall-through side of a conditional branch.
    FALLTHROUGH = "fallthrough"
    #: Straight-line continuation: an explicit fall-through terminator or
    #: a block split by a label.  Not a branch — contributes no history
    #: bit and is never backward.
    STRAIGHT = "straight"
    #: Unconditional direct jump.
    JUMP = "jump"
    #: One resolved target of an indirect jump.
    INDIRECT = "indirect"
    #: Call edge into a procedure entry.
    CALL = "call"
    #: Return edge back to a call continuation.
    RETURN = "return"


@dataclass(frozen=True)
class Edge:
    """A directed control-flow edge between two blocks.

    ``src`` and ``dst`` are block uids.  ``backward`` is the address-based
    direction used throughout the paper: the edge is backward when the
    target's address does not exceed the branch instruction's address.
    """

    src: int
    dst: int
    kind: EdgeKind
    backward: bool
    interprocedural: bool = False

    @property
    def is_taken_transfer(self) -> bool:
        """Whether traversing the edge corresponds to a *taken* branch.

        Fall-through and straight-line edges are the only not-taken
        transfers; everything else (jumps, taken conditionals, calls,
        returns, indirect jumps) actively redirects control.
        """
        return self.kind not in (EdgeKind.FALLTHROUGH, EdgeKind.STRAIGHT)

    @property
    def contributes_history_bit(self) -> bool:
        """Whether the edge adds a 0/1 bit to a bit-tracing signature."""
        return self.kind in (EdgeKind.TAKEN, EdgeKind.FALLTHROUGH)
