"""Graphviz (DOT) export of control-flow graphs.

Purely textual — no graphviz dependency — so programs, their loops and
the NET head population can be visualized with any DOT renderer.  Path
heads (backward-branch targets) are highlighted, back edges drawn
dashed, and call/return edges drawn between procedure clusters.
"""

from __future__ import annotations

from repro.cfg.edge import EdgeKind
from repro.cfg.program import Program

_EDGE_STYLE = {
    EdgeKind.TAKEN: 'label="T"',
    EdgeKind.FALLTHROUGH: 'label="F"',
    EdgeKind.STRAIGHT: "",
    EdgeKind.JUMP: "",
    EdgeKind.INDIRECT: "style=dotted",
    EdgeKind.CALL: "color=blue",
    EdgeKind.RETURN: "color=blue, style=dotted",
}


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def program_to_dot(
    program: Program,
    include_interprocedural: bool = True,
    highlight_heads: bool = True,
) -> str:
    """Render ``program`` as a DOT digraph with procedure clusters."""
    heads = program.backward_branch_targets() if highlight_heads else set()
    lines = [f"digraph {_quote(program.name)} {{", "  node [shape=box];"]

    for index, (name, proc) in enumerate(program.procedures.items()):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(name)};")
        for block in proc.blocks:
            attributes = [
                f"label={_quote(f'{block.label}@{block.address} ({block.size})')}"
            ]
            if block.uid in heads:
                attributes.append("style=filled")
                attributes.append('fillcolor="gold"')
            lines.append(f"    n{block.uid} [{', '.join(attributes)}];")
        lines.append("  }")

    for edge in program.edges:
        if edge.interprocedural and not include_interprocedural:
            continue
        attributes = []
        style = _EDGE_STYLE.get(edge.kind, "")
        if style:
            attributes.append(style)
        if edge.backward:
            attributes.append("style=dashed")
            attributes.append("constraint=false")
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"  n{edge.src} -> n{edge.dst}{suffix};")

    lines.append("}")
    return "\n".join(lines)
