"""Basic blocks and branch terminators.

The control-flow model follows the paper's setting: a program is a set of
procedures, each a graph of basic blocks laid out at concrete addresses.
Every block ends in exactly one *terminator* (a control transfer).  Branch
direction (forward/backward) is defined by *addresses*, exactly as a binary
level system like Dynamo sees it: a branch is *backward* when its target
address is less than or equal to the address of the branch instruction
itself.  Targets of backward taken branches are the potential *path heads*
of the NET scheme.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CFGError


class BranchKind(enum.Enum):
    """Classification of a basic block's terminator."""

    #: Two-way conditional branch: ``taken`` target plus fall-through.
    COND = "cond"
    #: Unconditional direct jump.
    JUMP = "jump"
    #: Unconditional indirect jump (e.g. a switch table or computed goto).
    INDIRECT = "indirect"
    #: Direct procedure call; control returns to the fall-through block.
    CALL = "call"
    #: Indirect procedure call through a pointer; several possible callees.
    ICALL = "icall"
    #: Procedure return.
    RETURN = "return"
    #: No explicit branch: control falls through to the layout successor.
    FALLTHROUGH = "fallthrough"
    #: Program termination.
    HALT = "halt"


#: Terminator kinds that transfer control to one statically-known label.
DIRECT_KINDS = frozenset({BranchKind.JUMP, BranchKind.CALL})

#: Terminator kinds whose target is chosen at run time.
INDIRECT_KINDS = frozenset({BranchKind.INDIRECT, BranchKind.ICALL})


@dataclass
class Terminator:
    """The control transfer ending a basic block.

    Which fields are meaningful depends on :attr:`kind`:

    ``COND``
        ``taken_label`` and ``fallthrough_label``.
    ``JUMP``
        ``taken_label``.
    ``INDIRECT``
        ``targets`` — the statically known set of possible target labels.
    ``CALL``
        ``callee`` (procedure name); control returns to
        ``fallthrough_label``.
    ``ICALL``
        ``callees`` (possible procedure names); returns to
        ``fallthrough_label``.
    ``RETURN`` / ``HALT``
        no operands.
    ``FALLTHROUGH``
        ``fallthrough_label`` (the layout successor).

    Labels are local to the owning procedure and resolved to
    :class:`BasicBlock` uids when the program is finalized.
    """

    kind: BranchKind
    taken_label: str | None = None
    fallthrough_label: str | None = None
    targets: tuple[str, ...] = ()
    callee: str | None = None
    callees: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        requirements = {
            BranchKind.COND: self.taken_label and self.fallthrough_label,
            BranchKind.JUMP: self.taken_label,
            BranchKind.INDIRECT: len(self.targets) > 0,
            BranchKind.CALL: self.callee and self.fallthrough_label,
            BranchKind.ICALL: len(self.callees) > 0 and self.fallthrough_label,
            BranchKind.RETURN: True,
            BranchKind.FALLTHROUGH: self.fallthrough_label,
            BranchKind.HALT: True,
        }
        if not requirements[self.kind]:
            raise CFGError(
                f"terminator of kind {self.kind.value!r} is missing operands"
            )

    @property
    def is_conditional(self) -> bool:
        """Whether the terminator contributes a history bit to a signature."""
        return self.kind is BranchKind.COND

    @property
    def is_indirect(self) -> bool:
        """Whether the terminator's target is chosen at run time."""
        return self.kind in INDIRECT_KINDS


@dataclass
class BasicBlock:
    """A straight-line code sequence ending in a single terminator.

    Attributes
    ----------
    uid:
        Program-global identifier, assigned at finalization.
    proc_name:
        Name of the owning procedure.
    label:
        Procedure-local label, unique within the procedure.
    size:
        Number of instructions in the block, including the terminator.
        Drives the Dynamo cost model and the per-path instruction counts.
    terminator:
        The control transfer ending the block.
    address:
        Start address of the block (one address unit per instruction),
        assigned at finalization.
    """

    proc_name: str
    label: str
    size: int
    terminator: Terminator
    uid: int = -1
    address: int = -1
    # Resolved successor uids, filled in by Program.finalize().
    taken_uid: int | None = field(default=None, repr=False)
    fallthrough_uid: int | None = field(default=None, repr=False)
    target_uids: tuple[int, ...] = field(default=(), repr=False)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise CFGError(
                f"block {self.proc_name}.{self.label} must contain at least "
                f"one instruction, got size={self.size}"
            )

    @property
    def branch_address(self) -> int:
        """Address of the terminator instruction (the block's last slot)."""
        return self.address + self.size - 1

    @property
    def end_address(self) -> int:
        """First address past the block."""
        return self.address + self.size

    @property
    def kind(self) -> BranchKind:
        """Shorthand for the terminator kind."""
        return self.terminator.kind

    def key(self) -> tuple[str, str]:
        """The (procedure, label) pair identifying this block symbolically."""
        return (self.proc_name, self.label)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.proc_name}.{self.label}@{self.address}"
