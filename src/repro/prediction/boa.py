"""Boa-style branch-profile based path construction (paper §7, related work).

The Boa binary translator selects hot paths differently from NET: it
profiles *every branch* during interpretation and, once a hot group entry
is found, constructs the path by repeatedly following the statistically
most likely successor.  The paper points out two weaknesses that this
implementation makes measurable:

* every branch must be profiled (high overhead, large counter space);
* composing a path from isolated branch frequencies ignores branch
  correlation, so the constructed path may never execute as a whole — in
  which case the prediction captures nothing.

The predictor uses the same hot-head trigger as NET so the two schemes
differ only in how the tail is chosen: speculative (next executing) vs
constructed (most likely successors).
"""

from __future__ import annotations

import numpy as np

from repro.prediction.base import (
    OnlinePredictor,
    PredictionOutcome,
    occurrence_index_arrays,
)
from repro.trace.recorder import PathTrace


class BoaPredictor(OnlinePredictor):
    """Most-likely-successor path construction on hot heads.

    Parameters
    ----------
    delay:
        Prediction delay τ for the head counters, as in NET.
    max_blocks:
        Length cap for constructed paths.
    """

    name = "boa"

    def __init__(self, delay: int, max_blocks: int = 256):
        super().__init__(delay)
        self.max_blocks = max_blocks

    def run(self, trace: PathTrace) -> PredictionOutcome:
        tau = self.delay
        table = trace.table
        path_ids = trace.path_ids
        arrival = trace.backward_arrival_mask()

        # Index: block sequence -> path id, for matching constructed paths.
        sequence_index: dict[tuple[int, ...], int] = {}
        for pid in range(len(table)):
            sequence_index.setdefault(table.path(pid).blocks, pid)

        order, starts = occurrence_index_arrays(path_ids, trace.num_paths)

        # successor frequency map: src block -> {dst block: count}
        edge_counts: dict[int, dict[int, int]] = {}
        end_counts: dict[int, int] = {}
        head_counters: dict[int, int] = {}
        retired: set[int] = set()

        predicted: list[int] = []
        times: list[int] = []
        captured: list[int] = []
        constructed_misses = 0
        profiling_ops = 0

        start_uids = trace.start_uids()
        for index in range(len(path_ids)):
            pid = int(path_ids[index])
            path = table.path(pid)

            # Branch profiling: every block-to-block transition is counted.
            blocks = path.blocks
            previous = blocks[0]
            for block in blocks[1:]:
                successors = edge_counts.setdefault(previous, {})
                successors[block] = successors.get(block, 0) + 1
                previous = block
            end_counts[previous] = end_counts.get(previous, 0) + 1
            profiling_ops += len(blocks)

            head = int(start_uids[pid])
            if head in retired or not arrival[index]:
                continue
            count = head_counters.get(head, 0) + 1
            head_counters[head] = count
            if count <= tau:
                continue

            retired.add(head)
            constructed = self._construct(head, edge_counts, end_counts)
            match = sequence_index.get(constructed)
            if match is None:
                constructed_misses += 1
                continue
            occurrences = order[starts[match] : starts[match + 1]]
            cut = np.searchsorted(occurrences, index, side="left")
            remaining = int(len(occurrences) - cut)
            predicted.append(match)
            times.append(index)
            captured.append(remaining)

        self.last_constructed_misses = constructed_misses

        return PredictionOutcome(
            scheme=self.name,
            delay=tau,
            predicted_ids=np.asarray(predicted, dtype=np.int64),
            prediction_times=np.asarray(times, dtype=np.int64),
            captured=np.asarray(captured, dtype=np.int64),
            counter_space=sum(len(s) for s in edge_counts.values())
            + len(head_counters),
            profiling_ops=profiling_ops,
        )

    def _construct(
        self,
        head: int,
        edge_counts: dict[int, dict[int, int]],
        end_counts: dict[int, int],
    ) -> tuple[int, ...]:
        """Follow most-likely successors from ``head``.

        At each block the observed continuations compete: each successor
        block by its edge count, and "the path ends here" by the block's
        end count.  Construction stops when ending wins, when a block
        repeats (the constructed path would loop), or at the length cap.
        """
        sequence = [head]
        seen = {head}
        while len(sequence) < self.max_blocks:
            current = sequence[-1]
            best_succ = None
            best_count = end_counts.get(current, 0)
            for dst, count in edge_counts.get(current, {}).items():
                if count > best_count and dst not in seen:
                    best_succ = dst
                    best_count = count
            if best_succ is None:
                break
            sequence.append(best_succ)
            seen.add(best_succ)
        return tuple(sequence)
