"""The trivial predict-on-first-execution scheme.

The paper uses this limit case (τ = 0) to motivate the noise metric: "if
hit rate was the only measure of prediction quality making optimal path
predictions would be trivial: simply predict every path when it first
executes" (§3).  It is exactly path-profile based prediction with zero
delay, packaged under its own name for the benchmarks and examples.
"""

from __future__ import annotations

from repro.prediction.base import PredictionOutcome
from repro.prediction.path_profile import PathProfilePredictor
from repro.trace.recorder import PathTrace


class FirstExecutionPredictor(PathProfilePredictor):
    """Predict every path as hot the first time it executes."""

    name = "first-execution"

    def __init__(self):
        super().__init__(delay=0)

    def run(self, trace: PathTrace) -> PredictionOutcome:
        outcome = super().run(trace)
        return PredictionOutcome(
            scheme=self.name,
            delay=0,
            predicted_ids=outcome.predicted_ids,
            prediction_times=outcome.prediction_times,
            captured=outcome.captured,
            counter_space=outcome.counter_space,
            profiling_ops=outcome.profiling_ops,
        )
