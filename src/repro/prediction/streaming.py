"""Incremental NET prediction over a live occurrence stream.

:class:`~repro.prediction.net.NETPredictor` replays a complete
:class:`~repro.trace.recorder.PathTrace` in one vectorized pass — the
right shape for sweeps, and the wrong one for a server that watches a
program *while it executes*.  :class:`NETSession` is the online form:
it consumes path occurrences one at a time as the extractor completes
them, bumps head counters on backward arrivals, and announces a hot-path
selection the moment a tail first executes from a hot head.

The session implements the paper's region model
(``retire_heads=False``): once a head's counter exceeds the prediction
delay τ, every distinct tail subsequently executing from it is selected
at its first post-hot execution and counted as captured from then on.
Determinism is the point — after any prefix of a stream, the session's
state is a pure function of the occurrences seen so far, and after the
*whole* stream its :meth:`outcome` is byte-identical to
``NETPredictor(delay).run(trace)`` over the materialized trace.  That
identity is what the serving property tests lean on to prove tenant
isolation, and it is pinned directly by the streaming equivalence tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import PredictionOutcome


class NETSession:
    """Streaming NET state for one program execution (one tenant).

    Parameters
    ----------
    delay:
        The prediction delay τ; a head turns hot at its (τ+1)-th counted
        arrival, and the occurrence that makes it hot is itself eligible
        for selection (matching ``NETPredictor``'s accounting).
    count_backward_arrivals_only:
        When True (default, matching Dynamo) only arrivals via a
        backward taken branch bump the head counter.
    """

    __slots__ = (
        "delay",
        "count_backward_arrivals_only",
        "_counters",
        "_captured",
        "_predicted",
        "_times",
        "_flow",
        "_prev_ends_backward",
        "_increments",
        "_collection_blocks",
    )

    def __init__(
        self, delay: int, count_backward_arrivals_only: bool = True
    ):
        if delay < 0:
            raise PredictionError(
                f"delay must be non-negative, got {delay}"
            )
        self.delay = int(delay)
        self.count_backward_arrivals_only = count_backward_arrivals_only
        #: head uid -> counted arrivals so far (created on first count).
        self._counters: dict[int, int] = {}
        #: path id -> post-hot executions (created at selection time).
        self._captured: dict[int, int] = {}
        self._predicted: list[int] = []
        self._times: list[int] = []
        self._flow = 0
        self._prev_ends_backward = False
        self._increments = 0
        self._collection_blocks = 0

    # ------------------------------------------------------------------
    def observe(
        self,
        path_id: int,
        head_uid: int,
        ends_backward: bool,
        num_blocks: int,
    ) -> bool:
        """Feed one path occurrence; True if it triggered a selection.

        ``head_uid``/``ends_backward``/``num_blocks`` are the occurring
        path's static attributes (the stream equivalent of the trace's
        per-path columns).  An occurrence arrives via a backward taken
        branch exactly when the *previous* occurrence's path ended with
        one — the session tracks that bit itself, so callers only
        describe the current path.
        """
        index = self._flow
        self._flow = index + 1

        counted = (
            self._prev_ends_backward
            if self.count_backward_arrivals_only
            else True
        )
        self._prev_ends_backward = ends_backward

        counters = self._counters
        if counted:
            count = counters.get(head_uid, 0) + 1
            counters[head_uid] = count
            if count <= self.delay + 1:
                self._increments += 1

        # Hot exactly when the head has accumulated > τ counted
        # arrivals by this occurrence — the streaming restatement of
        # ``index >= hot_time[head]``.
        if counters.get(head_uid, 0) <= self.delay:
            return False

        captured = self._captured.get(path_id)
        if captured is None:
            self._captured[path_id] = 1
            self._predicted.append(path_id)
            self._times.append(index)
            self._collection_blocks += num_blocks
            return True
        self._captured[path_id] = captured + 1
        return False

    # ------------------------------------------------------------------
    # Durable state (serving checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The session's complete mutable state as plain JSON-able data.

        Together with the constructor parameters this is everything a
        restored session needs to continue the stream byte-identically;
        :meth:`load_state` is the inverse.  Counter and capture maps are
        emitted as ``[key, value]`` pairs (JSON objects cannot carry int
        keys), in insertion order.
        """
        return {
            "counters": [
                [int(k), int(v)] for k, v in self._counters.items()
            ],
            "captured": [
                [int(k), int(v)] for k, v in self._captured.items()
            ],
            "predicted": [int(p) for p in self._predicted],
            "times": [int(t) for t in self._times],
            "flow": self._flow,
            "prev_ends_backward": bool(self._prev_ends_backward),
            "increments": self._increments,
            "collection_blocks": self._collection_blocks,
        }

    def load_state(self, state: dict) -> None:
        """Restore the exact state captured by :meth:`state_dict`.

        Only valid on a fresh session (nothing observed yet); the
        configuration (τ, counting mode) comes from the constructor and
        is *not* part of the state.
        """
        if self._flow:
            raise PredictionError(
                "cannot load state into a session that already "
                f"observed {self._flow} occurrences"
            )
        self._counters = {int(k): int(v) for k, v in state["counters"]}
        self._captured = {int(k): int(v) for k, v in state["captured"]}
        self._predicted = [int(p) for p in state["predicted"]]
        self._times = [int(t) for t in state["times"]]
        self._flow = int(state["flow"])
        self._prev_ends_backward = bool(state["prev_ends_backward"])
        self._increments = int(state["increments"])
        self._collection_blocks = int(state["collection_blocks"])

    # ------------------------------------------------------------------
    @property
    def flow(self) -> int:
        """Occurrences observed so far."""
        return self._flow

    @property
    def num_predictions(self) -> int:
        """Hot-path selections announced so far."""
        return len(self._predicted)

    @property
    def counter_space(self) -> int:
        """Head counters allocated so far (paper §5.2 space measure)."""
        return len(self._counters)

    @property
    def profiling_ops(self) -> int:
        """Dynamic profiling operations so far (paper §4 cost measure)."""
        return self._increments + self._collection_blocks

    def outcome(self, scheme: str = "net") -> PredictionOutcome:
        """The session's state as a :class:`PredictionOutcome`.

        After a complete stream this equals (array for array, field for
        field) what ``NETPredictor(delay, count_backward_arrivals_only)``
        returns for the materialized trace.
        """
        predicted = np.asarray(self._predicted, dtype=np.int64)
        return PredictionOutcome(
            scheme=scheme,
            delay=self.delay,
            predicted_ids=predicted,
            prediction_times=np.asarray(self._times, dtype=np.int64),
            captured=np.asarray(
                [self._captured[int(p)] for p in self._predicted],
                dtype=np.int64,
            ),
            counter_space=self.counter_space,
            profiling_ops=self.profiling_ops,
        )
