"""NET — Next Executing Tail prediction (paper §4.1/§4.2).

NET splits a path into its *head* (the starting block, a target of a
backward taken branch) and its *tail* (the remainder).  Profiling is
limited to heads: one counter per head, bumped whenever a backward taken
branch lands there.  Once a head's counter exceeds the prediction delay τ
the head is *hot*, and the next executing tail is speculatively selected
as a hot path — no per-branch history shifting, no path table.

Two models of what happens after the first selection are provided:

* ``retire_heads=False`` (default) — the *region* model used for the
  paper's abstract evaluation: once a head is hot, every distinct tail
  that subsequently executes from it is materialized at its first
  post-hot execution and captured from then on.  This abstracts Dynamo's
  secondary trace selection, where exits of an existing fragment become
  new trace heads, so the second (third, …) hot path through a loop is
  still captured shortly after the region turns hot.
* ``retire_heads=True`` — the literal single-shot model: the head
  counter is retired after its first prediction and only the one
  next-executing tail is ever selected for that head.  Useful as an
  ablation; it shows how much of NET's hit rate rests on secondary
  selection when loops have more than one dominant path.

Either way the counter population is bounded by the number of
backward-branch targets (a fraction of |B|), against up to 2^|B| path
counters for path-profile based prediction.
"""

from __future__ import annotations

import numpy as np

from repro.prediction.base import (
    OnlinePredictor,
    PredictionOutcome,
    remaining_after,
)
from repro.trace.recorder import PathTrace


class NETPredictor(OnlinePredictor):
    """The paper's NET prediction scheme.

    Parameters
    ----------
    delay:
        The prediction delay τ.  A head turns hot at its (τ+1)-th counted
        execution; tails captured from a hot head include the execution
        that materializes them, mirroring the ``freq(p) − τ`` accounting
        of path-profile prediction.
    count_backward_arrivals_only:
        When True (default, matching Dynamo) the head counter is bumped
        only when control reaches the head *via a backward taken branch*.
        When False every path start bumps the counter.
    retire_heads:
        Single-shot ablation; see the module docstring.
    """

    name = "net"

    def __init__(
        self,
        delay: int,
        count_backward_arrivals_only: bool = True,
        retire_heads: bool = False,
    ):
        super().__init__(delay)
        self.count_backward_arrivals_only = count_backward_arrivals_only
        self.retire_heads = retire_heads

    # ------------------------------------------------------------------
    def run(self, trace: PathTrace) -> PredictionOutcome:
        head_seq = trace.head_sequence()
        if self.count_backward_arrivals_only:
            counted = trace.backward_arrival_mask()
        else:
            counted = np.ones(len(head_seq), dtype=bool)

        hot_time, num_heads, counted_heads = self._head_hot_times(
            head_seq, counted
        )
        if self.retire_heads:
            predicted, times, captured = self._single_shot(trace, hot_time)
        else:
            predicted, times, captured = self._region_model(
                trace, head_seq, hot_time
            )

        by_time = np.argsort(times, kind="stable")
        return PredictionOutcome(
            scheme=self.name,
            delay=self.delay,
            predicted_ids=predicted[by_time],
            prediction_times=times[by_time],
            captured=captured[by_time],
            counter_space=num_heads,
            profiling_ops=self._profiling_ops(
                trace, counted_heads, predicted[by_time]
            ),
        )

    # ------------------------------------------------------------------
    def _head_hot_times(
        self, head_seq: np.ndarray, counted: np.ndarray
    ) -> tuple[dict[int, int], int, np.ndarray]:
        """Occurrence index at which each head turns hot.

        Returns ``(hot_time, num_heads, counted_heads)`` where
        ``hot_time`` maps head uid → index of its (τ+1)-th counted
        arrival (heads that never reach it are absent), ``num_heads`` is
        the number of heads with a counter (the NET counter space), and
        ``counted_heads`` is the sequence of counted head arrivals.
        """
        tau = self.delay
        counted_indices = np.flatnonzero(counted)
        counted_heads = head_seq[counted_indices]
        hot_time: dict[int, int] = {}
        if not len(counted_heads):
            return hot_time, 0, counted_heads

        unique_heads, inverse = np.unique(counted_heads, return_inverse=True)
        head_order = np.argsort(inverse, kind="stable")
        head_starts = np.searchsorted(
            inverse[head_order], np.arange(len(unique_heads) + 1), "left"
        )
        for h, uid in enumerate(unique_heads):
            arrivals = counted_indices[
                head_order[head_starts[h] : head_starts[h + 1]]
            ]
            if len(arrivals) > tau:
                hot_time[int(uid)] = int(arrivals[tau])
        return hot_time, len(unique_heads), counted_heads

    # ------------------------------------------------------------------
    def _region_model(
        self,
        trace: PathTrace,
        head_seq: np.ndarray,
        hot_time: dict[int, int],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Capture every tail executing from a head after it turned hot."""
        n = len(trace.path_ids)
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        if not n or not hot_time:
            return empty

        # hot_time per occurrence, via a dense head-uid lookup table.
        max_uid = int(head_seq.max())
        hot_lookup = np.full(max_uid + 1, n, dtype=np.int64)
        for uid, time in hot_time.items():
            hot_lookup[uid] = time
        occurrence_hot = np.arange(n) >= hot_lookup[head_seq]

        captured_per_path = np.bincount(
            trace.path_ids[occurrence_hot], minlength=trace.num_paths
        )
        predicted = np.flatnonzero(captured_per_path > 0).astype(np.int64)

        # Prediction time of a path: its first post-hot occurrence.
        times_per_path = np.full(trace.num_paths, n, dtype=np.int64)
        hot_indices = np.flatnonzero(occurrence_hot)
        np.minimum.at(times_per_path, trace.path_ids[hot_indices], hot_indices)

        return (
            predicted,
            times_per_path[predicted],
            captured_per_path[predicted].astype(np.int64),
        )

    # ------------------------------------------------------------------
    def _single_shot(
        self, trace: PathTrace, hot_time: dict[int, int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One prediction per head: the tail executing at hot-time."""
        order, starts = trace.occurrence_index()
        predicted: list[int] = []
        times: list[int] = []
        captured: list[int] = []
        for _, time in sorted(hot_time.items(), key=lambda item: item[1]):
            path_id = int(trace.path_ids[time])
            predicted.append(path_id)
            times.append(time)
            captured.append(remaining_after(order, starts, path_id, time))
        return (
            np.asarray(predicted, dtype=np.int64),
            np.asarray(times, dtype=np.int64),
            np.asarray(captured, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    def _profiling_ops(
        self,
        trace: PathTrace,
        counted_heads: np.ndarray,
        predicted_ids: np.ndarray,
    ) -> int:
        """Dynamic profiling operations under NET.

        Each head performs at most τ+1 counter increments before turning
        hot; collecting a selected tail costs one incremental
        instrumentation step per block of the tail (paper §4.2).
        """
        tau = self.delay
        if len(counted_heads):
            _, arrivals_per_head = np.unique(counted_heads, return_counts=True)
            increments = int(np.minimum(arrivals_per_head, tau + 1).sum())
        else:
            increments = 0
        if len(predicted_ids):
            collection = int(trace.blocks_per_path()[predicted_ids].sum())
        else:
            collection = 0
        return increments + collection
