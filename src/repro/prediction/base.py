"""Shared vocabulary of the online prediction schemes.

Every predictor consumes a :class:`repro.trace.PathTrace` and produces a
:class:`PredictionOutcome`: which paths were predicted, *when* (the
occurrence index of the prediction moment), and how much of each predicted
path's flow remains after that moment (its *captured* flow).  The abstract
metrics of :mod:`repro.metrics.quality` are pure functions of an outcome
plus the trace's hot set, so the same evaluation code scores every scheme.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import PredictionError
from repro.obs.core import Registry, get_registry
from repro.trace.recorder import PathTrace


@dataclass(frozen=True)
class PredictionOutcome:
    """Result of running one predictor over one trace.

    Attributes
    ----------
    scheme:
        Human-readable scheme name (``"path-profile"``, ``"net"``, …).
    delay:
        The prediction delay τ the scheme ran with.
    predicted_ids:
        Path ids predicted hot, in prediction order.
    prediction_times:
        Occurrence index at which each prediction was made (aligned with
        ``predicted_ids``).  The execution at the prediction index is
        already part of the captured flow, matching the paper's
        ``freq(p) − τ`` accounting.
    captured:
        Captured flow per predicted path: the number of its executions at
        or after the prediction moment.
    counter_space:
        Number of counters the scheme allocated during the run — the
        space-consumption measure of paper §5.2.
    profiling_ops:
        Approximate count of dynamic profiling operations (counter bumps,
        history-bit shifts, path-table updates) — the runtime-overhead
        measure of paper §4.
    """

    scheme: str
    delay: int
    predicted_ids: np.ndarray
    prediction_times: np.ndarray
    captured: np.ndarray
    counter_space: int
    profiling_ops: int

    def __post_init__(self) -> None:
        lengths = {
            len(self.predicted_ids),
            len(self.prediction_times),
            len(self.captured),
        }
        if len(lengths) != 1:
            raise PredictionError(
                "predicted_ids, prediction_times and captured must be "
                "aligned arrays"
            )

    @property
    def num_predictions(self) -> int:
        """How many paths the scheme predicted hot."""
        return int(len(self.predicted_ids))

    @property
    def captured_flow(self) -> int:
        """Total flow captured across all predictions."""
        return int(self.captured.sum())

    def predicted_set(self) -> set[int]:
        """The predicted path ids as a set."""
        return set(int(p) for p in self.predicted_ids)

    def publish(self, obs: Registry | None) -> None:
        """Accumulate this outcome's accounting into an obs registry.

        Counters (relative to ``obs``): ``outcomes``, ``predictions``,
        ``captured_flow``, and the paper's two cost axes —
        ``profiling_ops`` (dynamic profiling operations, §4) and
        ``counter_space`` (counters allocated, §5.2).  Sums are
        meaningful across any number of outcomes, which is how a sweep
        reports scheme cost totals.  No-op on the null registry.
        """
        reg = get_registry(obs)
        reg.counter("outcomes").inc()
        reg.counter("predictions").inc(self.num_predictions)
        reg.counter("captured_flow").inc(self.captured_flow)
        reg.counter("profiling_ops").inc(int(self.profiling_ops))
        reg.counter("counter_space").inc(int(self.counter_space))


class OnlinePredictor(abc.ABC):
    """Base class of the online hot-path prediction schemes.

    Subclasses implement :meth:`run`.  ``delay`` is the prediction delay
    τ: the number of profiled executions a counter must accumulate before
    its unit is predicted hot.
    """

    #: Scheme name used in outcomes and reports.
    name: str = "abstract"

    def __init__(self, delay: int):
        if delay < 0:
            raise PredictionError(f"delay must be non-negative, got {delay}")
        self.delay = int(delay)

    @abc.abstractmethod
    def run(self, trace: PathTrace) -> PredictionOutcome:
        """Simulate the scheme over ``trace`` and return its outcome."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(delay={self.delay})"


def occurrence_index_arrays(
    path_ids: np.ndarray, num_paths: int
) -> tuple[np.ndarray, np.ndarray]:
    """Group occurrence indices by path id.

    Returns ``(order, starts)`` where ``order`` is a stable argsort of
    ``path_ids`` and ``starts[i]`` is the offset in ``order`` of path
    ``i``'s first occurrence; ``order[starts[i]:starts[i+1]]`` lists the
    occurrence indices of path ``i`` in execution order.  ``starts`` has
    ``num_paths + 1`` entries.

    When grouping a :class:`~repro.trace.recorder.PathTrace`'s own
    occurrence array, prefer :meth:`PathTrace.occurrence_index`, which
    returns the identical pair but caches it on the trace so every
    predictor replaying the same trace shares one argsort.
    """
    order = np.argsort(path_ids, kind="stable")
    sorted_ids = path_ids[order]
    starts = np.searchsorted(sorted_ids, np.arange(num_paths + 1), side="left")
    return order, starts


def remaining_after(
    order: np.ndarray,
    starts: np.ndarray,
    path_id: int,
    time: int,
) -> int:
    """Executions of ``path_id`` at occurrence index ≥ ``time``."""
    occurrences = order[starts[path_id] : starts[path_id + 1]]
    cut = np.searchsorted(occurrences, time, side="left")
    return int(len(occurrences) - cut)
