"""Path-profile based prediction (paper §4).

The straightforward adaptation of an offline path profiling scheme to the
online setting: maintain one counter per dynamic path (bit tracing builds
the path signature as the program runs, then bumps the signature's table
entry); as soon as a path's counter exceeds the prediction delay τ the
path is predicted hot.

The captured flow of a predicted path is exactly ``freq(p) − τ``: the
execution that pushes the counter past τ and everything after it run
under the prediction (paper §3).
"""

from __future__ import annotations

import numpy as np

from repro.prediction.base import OnlinePredictor, PredictionOutcome
from repro.trace.recorder import PathTrace


class PathProfilePredictor(OnlinePredictor):
    """Online predictor derived from a full path profile.

    ``delay`` is τ: a path is predicted when it has executed τ times, at
    its (τ+1)-th execution.  With ``delay=0`` every path is predicted on
    first execution (the trivial maximal-hit-rate, maximal-noise scheme
    the paper uses to motivate the noise metric).
    """

    name = "path-profile"

    def run(self, trace: PathTrace) -> PredictionOutcome:
        freqs = trace.freqs()
        tau = self.delay
        predicted = np.flatnonzero(freqs > tau)

        # Cached on the trace: one argsort per trace, not one per cell.
        order, starts = trace.occurrence_index()
        # The prediction moment is the (τ+1)-th occurrence of the path.
        times = order[starts[predicted] + tau]
        captured = freqs[predicted] - tau

        # Sort predictions by the moment they were made, as a real online
        # system would emit them.
        by_time = np.argsort(times, kind="stable")

        return PredictionOutcome(
            scheme=self.name,
            delay=tau,
            predicted_ids=predicted[by_time].astype(np.int64),
            prediction_times=times[by_time].astype(np.int64),
            captured=captured[by_time].astype(np.int64),
            counter_space=self._counter_space(trace),
            profiling_ops=self._profiling_ops(trace, freqs),
        )

    def _counter_space(self, trace: PathTrace) -> int:
        """One counter per dynamic path seen during the run (paper §5.2)."""
        return int((trace.freqs() > 0).sum())

    def _profiling_ops(self, trace: PathTrace, freqs: np.ndarray) -> int:
        """Dynamic profiling operations under bit tracing.

        Every profiled path execution shifts one history bit per
        conditional branch, records every indirect target, and performs
        one path-table update at the path end.  Executions after a path
        is predicted run out of the code cache and are not profiled, so
        each path is profiled at most τ times (plus the triggering
        execution, whose profiling work has already been spent when the
        prediction fires).
        """
        tau = self.delay
        profiled_execs = np.minimum(freqs, tau + 1)
        ops_per_exec = (
            trace.cond_branches_per_path()
            + trace.indirect_branches_per_path()
            + 1  # the path-table update
        )
        return int((profiled_execs * ops_per_exec).sum())
