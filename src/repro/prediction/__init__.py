"""Online hot-path prediction schemes.

* :class:`PathProfilePredictor` — full path profiling with a prediction
  threshold (the paper's "path profile based prediction");
* :class:`NETPredictor` — the paper's contribution: head counters plus
  speculative Next-Executing-Tail selection;
* :class:`BoaPredictor` — branch-frequency path construction (related
  work, §7);
* :class:`FirstExecutionPredictor` — the τ = 0 limit case.

All schemes share the :class:`OnlinePredictor` interface and produce
:class:`PredictionOutcome` records scored by :mod:`repro.metrics`.
"""

from repro.prediction.base import (
    OnlinePredictor,
    PredictionOutcome,
    occurrence_index_arrays,
    remaining_after,
)
from repro.prediction.boa import BoaPredictor
from repro.prediction.first_execution import FirstExecutionPredictor
from repro.prediction.net import NETPredictor
from repro.prediction.path_profile import PathProfilePredictor
from repro.prediction.streaming import NETSession

__all__ = [
    "BoaPredictor",
    "FirstExecutionPredictor",
    "NETPredictor",
    "NETSession",
    "OnlinePredictor",
    "PathProfilePredictor",
    "PredictionOutcome",
    "occurrence_index_arrays",
    "remaining_after",
]
