"""Hardware prediction schemes from the paper's related work (§7).

Branch-direction predictors (static, bimodal, gshare, two-level
adaptive) and a trace-cache model, all consuming the same branch-event
streams as the software profilers — so one trace quantifies both the
hardware schemes' per-branch accuracy and the software schemes' hot-path
quality, making the paper's "different problem, invisible state"
argument measurable.
"""

from repro.hardware.branch_predictors import (
    BimodalPredictor,
    BranchPredictionStats,
    BranchPredictor,
    GSharePredictor,
    StaticTakenPredictor,
    TwoLevelAdaptivePredictor,
    compare_branch_predictors,
)
from repro.hardware.trace_cache import TraceCache, TraceCacheStats, TraceLine

__all__ = [
    "BimodalPredictor",
    "BranchPredictionStats",
    "BranchPredictor",
    "GSharePredictor",
    "StaticTakenPredictor",
    "TraceCache",
    "TraceCacheStats",
    "TraceLine",
    "TwoLevelAdaptivePredictor",
    "compare_branch_predictors",
]
