"""A trace-cache model (Rotenberg/Bennett/Smith, cited in paper §7).

The trace cache captures dynamic instruction sequences — up to ``n``
blocks / ``m`` branches — keyed by start address plus branch outcomes,
to raise fetch bandwidth.  The paper's argument is that this hardware
path capture is *not available* to a dynamic compiler (its contents are
microarchitectural) and that its selection criterion (fetch bandwidth)
differs from hot-path prediction; this model lets the reproduction
measure that overlap: the cache's line population and hit rate versus
NET's predicted paths on identical traces.

The fill policy follows the classic design: on a fetch miss the
subsequent committed blocks are collected into a fill buffer and the
completed line is installed (direct-mapped by start block).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.trace.events import HALT_DST, BranchEvent


@dataclass(frozen=True)
class TraceLine:
    """One cached trace: a block sequence with its branch outcomes."""

    start: int
    blocks: tuple[int, ...]
    outcomes: tuple[int, ...]


@dataclass
class TraceCacheStats:
    """Fetch statistics of a simulation run."""

    fetches: int = 0
    hits: int = 0
    lines_installed: int = 0
    lines_replaced: int = 0
    resident_lines: int = 0
    #: Distinct (start, outcomes) line identities ever installed.
    distinct_lines: set[tuple] = field(default_factory=set)

    @property
    def hit_rate_percent(self) -> float:
        """Fraction of fetch groups served from the trace cache."""
        if self.fetches == 0:
            return 0.0
        return 100.0 * self.hits / self.fetches

    def render(self) -> str:
        """One-line report form."""
        return (
            f"trace-cache: hit={self.hit_rate_percent:6.2f}% "
            f"({self.hits:,}/{self.fetches:,} fetches), "
            f"lines={self.resident_lines} installed={self.lines_installed}"
        )


class TraceCache:
    """Direct-mapped trace cache over basic-block sequences.

    Parameters
    ----------
    num_sets:
        Number of direct-mapped sets (indexed by start block uid).
    max_blocks / max_branches:
        Line-capacity limits, as in the original design (e.g. 16
        instructions / 3 branches scaled to block granularity here).
    """

    def __init__(
        self,
        num_sets: int = 512,
        max_blocks: int = 6,
        max_branches: int = 3,
    ):
        if num_sets < 1 or max_blocks < 1 or max_branches < 0:
            raise ReproError("invalid trace cache geometry")
        self.num_sets = num_sets
        self.max_blocks = max_blocks
        self.max_branches = max_branches
        self._sets: dict[int, TraceLine] = {}
        self.stats = TraceCacheStats()

    # ------------------------------------------------------------------
    def _set_index(self, start: int) -> int:
        return start % self.num_sets

    def lookup(self, start: int) -> TraceLine | None:
        """The line whose start block is ``start``, if resident."""
        line = self._sets.get(self._set_index(start))
        if line is not None and line.start == start:
            return line
        return None

    def install(self, line: TraceLine) -> None:
        """Install ``line``, replacing any conflicting resident line."""
        index = self._set_index(line.start)
        if index in self._sets:
            self.stats.lines_replaced += 1
        self._sets[index] = line
        self.stats.lines_installed += 1
        self.stats.distinct_lines.add((line.start, line.outcomes))
        self.stats.resident_lines = len(self._sets)

    # ------------------------------------------------------------------
    def simulate(self, events: Iterable[BranchEvent], entry_uid: int) -> TraceCacheStats:
        """Fetch-simulate an event stream.

        At each fetch point the cache is probed with the current block;
        a hit requires the resident line's recorded branch outcomes to
        match the actual upcoming outcomes (the line is then consumed
        whole).  On a miss, a fill buffer collects blocks/outcomes until
        the line limits are reached and installs the line.
        """
        blocks: list[int] = [entry_uid]
        outcomes: list[int] = []
        # Materialize the block/outcome streams first.
        for event in events:
            bit = event.history_bit
            if bit is not None:
                outcomes.append((len(blocks) - 1, bit))
            if event.dst == HALT_DST:
                break
            blocks.append(event.dst)

        outcome_at = dict(outcomes)
        position = 0
        while position < len(blocks):
            self.stats.fetches += 1
            line = self.lookup(blocks[position])
            if line is not None and self._matches(
                line, blocks, outcome_at, position
            ):
                self.stats.hits += 1
                position += len(line.blocks)
                continue
            consumed = self._fill(blocks, outcome_at, position)
            position += consumed
        return self.stats

    def _matches(self, line, blocks, outcome_at, position) -> bool:
        end = position + len(line.blocks)
        if end > len(blocks):
            return False
        return tuple(blocks[position:end]) == line.blocks

    def _fill(self, blocks, outcome_at, position) -> int:
        taken: list[int] = []
        count = 0
        while (
            position + count < len(blocks)
            and count < self.max_blocks
            and len(taken) <= self.max_branches
        ):
            index = position + count
            bit = outcome_at.get(index)
            if bit is not None:
                if len(taken) == self.max_branches:
                    break
                taken.append(bit)
            count += 1
        count = max(count, 1)
        line = TraceLine(
            start=blocks[position],
            blocks=tuple(blocks[position : position + count]),
            outcomes=tuple(taken),
        )
        self.install(line)
        return count
