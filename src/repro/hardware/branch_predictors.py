"""Classic hardware branch predictors (related work, paper §7).

The paper positions NET against the hardware lineage — two-level
adaptive prediction (Yeh & Patt), correlation-based schemes (Pan/So/
Rahmeh, McFarling's gshare) — and argues they answer a *different*
question: per-branch direction accuracy for fetch bandwidth, not hot
path identification, and their state is architecturally invisible to a
dynamic compiler.  These models make the comparison concrete: they
consume the same branch-event streams as the software profilers, so one
trace yields both per-branch accuracy (here) and hot-path prediction
quality (:mod:`repro.prediction`).

All predictors share the ``predict → update`` interface over
conditional-branch events; unconditional transfers are ignored, exactly
as a direction predictor would.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import ReproError
from repro.trace.events import BranchEvent


@dataclass
class BranchPredictionStats:
    """Outcome of simulating one predictor over one event stream."""

    scheme: str
    conditional_branches: int = 0
    correct: int = 0
    table_bits: int = 0

    @property
    def accuracy_percent(self) -> float:
        """Correct direction predictions as a percentage."""
        if self.conditional_branches == 0:
            return 0.0
        return 100.0 * self.correct / self.conditional_branches

    @property
    def mispredictions(self) -> int:
        """Mispredicted conditional branches."""
        return self.conditional_branches - self.correct

    def render(self) -> str:
        """One-line report form."""
        return (
            f"{self.scheme:>12s}: accuracy={self.accuracy_percent:6.2f}% "
            f"({self.correct:,}/{self.conditional_branches:,}), "
            f"state={self.table_bits:,} bits"
        )


class _SaturatingCounter:
    """A 2-bit saturating counter, the workhorse of 1990s predictors."""

    __slots__ = ("value",)

    def __init__(self, value: int = 1):
        self.value = value

    def predict(self) -> bool:
        return self.value >= 2

    def update(self, taken: bool) -> None:
        if taken:
            self.value = min(self.value + 1, 3)
        else:
            self.value = max(self.value - 1, 0)


class BranchPredictor(abc.ABC):
    """Direction predictor over conditional-branch events."""

    name: str = "abstract"

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved outcome."""

    @property
    @abc.abstractmethod
    def table_bits(self) -> int:
        """Hardware state in bits (the space analog of counter space)."""

    def simulate(self, events: Iterable[BranchEvent]) -> BranchPredictionStats:
        """Run over an event stream, scoring conditional branches."""
        stats = BranchPredictionStats(scheme=self.name)
        for event in events:
            bit = event.history_bit
            if bit is None:
                continue
            taken = bool(bit)
            stats.conditional_branches += 1
            if self.predict(event.src) == taken:
                stats.correct += 1
            self.update(event.src, taken)
        stats.table_bits = self.table_bits
        return stats


class BimodalPredictor(BranchPredictor):
    """One 2-bit counter per branch PC (hashed into a fixed table)."""

    name = "bimodal"

    def __init__(self, table_size: int = 4096):
        if table_size < 1:
            raise ReproError("table_size must be positive")
        self.table_size = table_size
        self._counters = [_SaturatingCounter() for _ in range(table_size)]

    def _index(self, pc: int) -> int:
        return pc % self.table_size

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)].predict()

    def update(self, pc: int, taken: bool) -> None:
        self._counters[self._index(pc)].update(taken)

    @property
    def table_bits(self) -> int:
        return 2 * self.table_size


class GSharePredictor(BranchPredictor):
    """McFarling's gshare: global history XOR PC indexes the counters."""

    name = "gshare"

    def __init__(self, history_bits: int = 12):
        if not 1 <= history_bits <= 24:
            raise ReproError("history_bits must be in 1..24")
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._history = 0
        self._counters = [
            _SaturatingCounter() for _ in range(1 << history_bits)
        ]

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)].predict()

    def update(self, pc: int, taken: bool) -> None:
        self._counters[self._index(pc)].update(taken)
        self._history = ((self._history << 1) | int(taken)) & self._mask

    @property
    def table_bits(self) -> int:
        return 2 * len(self._counters) + self.history_bits


class TwoLevelAdaptivePredictor(BranchPredictor):
    """Yeh & Patt's PAp-style predictor: per-branch history registers
    indexing per-branch pattern tables."""

    name = "two-level"

    def __init__(self, history_bits: int = 6):
        if not 1 <= history_bits <= 16:
            raise ReproError("history_bits must be in 1..16")
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._histories: dict[int, int] = {}
        self._patterns: dict[tuple[int, int], _SaturatingCounter] = {}

    def predict(self, pc: int) -> bool:
        history = self._histories.get(pc, 0)
        counter = self._patterns.get((pc, history))
        return counter.predict() if counter is not None else True

    def update(self, pc: int, taken: bool) -> None:
        history = self._histories.get(pc, 0)
        counter = self._patterns.setdefault(
            (pc, history), _SaturatingCounter()
        )
        counter.update(taken)
        self._histories[pc] = ((history << 1) | int(taken)) & self._mask

    @property
    def table_bits(self) -> int:
        return (
            2 * len(self._patterns)
            + self.history_bits * len(self._histories)
        )


class StaticTakenPredictor(BranchPredictor):
    """Always-taken baseline (backward-taken heuristics reduce to this
    on loop-dominated code)."""

    name = "static-taken"

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass

    @property
    def table_bits(self) -> int:
        return 0


def compare_branch_predictors(
    events: list[BranchEvent],
) -> list[BranchPredictionStats]:
    """Simulate the standard predictor zoo over one event stream."""
    predictors: list[BranchPredictor] = [
        StaticTakenPredictor(),
        BimodalPredictor(),
        GSharePredictor(),
        TwoLevelAdaptivePredictor(),
    ]
    return [predictor.simulate(iter(events)) for predictor in predictors]
