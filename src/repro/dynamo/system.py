"""The Dynamo simulator façade.

Two entry points:

* :meth:`DynamoSystem.run` — the vectorized cost model used at Figure 5
  scale (millions of path occurrences);
* :meth:`DynamoSystem.run_detailed` — the event-level object model
  (fragment cache, head/path counters, linking, optional phase-flush
  heuristic) used on ISA traces and the §6.1 phase experiments, and to
  cross-validate the vectorized model.
"""

from __future__ import annotations

from repro.dynamo.config import DEFAULT_CONFIG, DynamoConfig
from repro.dynamo.costmodel import native_cycles, simulate_costs
from repro.dynamo.flush import PredictionRateMonitor
from repro.dynamo.fragment import Fragment, FragmentCache
from repro.dynamo.stats import CycleBreakdown, DynamoRun
from repro.dynamo.vm import (
    DEFAULT_MAX_TRACE_INSTRUCTIONS,
    DynamoVM,
    VMResult,
)
from repro.errors import DynamoError
from repro.isa.assembler import AssembledProgram
from repro.obs.core import Registry, get_registry
from repro.prediction.net import NETPredictor
from repro.prediction.path_profile import PathProfilePredictor
from repro.trace.recorder import PathTrace

#: Scheme names accepted by the simulator.
SCHEMES = ("net", "path-profile")


class DynamoSystem:
    """A simulated Dynamo instance with a fixed cost configuration.

    ``obs`` mounts the simulator's instrumentation under ``dynamo.*``:
    spans around prediction and cost modelling, the predictor's
    accounting under ``dynamo.prediction.*`` and each run's cycle totals
    (see :meth:`repro.dynamo.stats.DynamoRun.publish`).  Without it
    nothing is measured.
    """

    def __init__(
        self,
        config: DynamoConfig = DEFAULT_CONFIG,
        obs: Registry | None = None,
    ):
        self.config = config
        self._obs = get_registry(obs).child("dynamo")

    # ------------------------------------------------------------------
    def run(
        self, trace: PathTrace, scheme: str = "net", delay: int = 50
    ) -> DynamoRun:
        """Vectorized simulation of one (trace, scheme, delay) cell."""
        predictor = self._predictor(scheme, delay)
        with self._obs.span("predict"):
            outcome = predictor.run(trace)
        outcome.publish(self._obs.child("prediction"))
        with self._obs.span("cost_model"):
            result = simulate_costs(trace, outcome, self.config, trace.name)
        result.publish(self._obs)
        return result

    def run_vm(
        self,
        program: AssembledProgram,
        memory: list[int] | None = None,
        scheme: str = "net",
        delay: int = 50,
        tier: str | None = None,
        max_trace_instructions: int = DEFAULT_MAX_TRACE_INSTRUCTIONS,
        max_steps: int = 10_000_000,
    ) -> VMResult:
        """Execute a real ISA program under the miniature Dynamo.

        Unlike :meth:`run`, which models costs over a recorded path
        trace, this actually runs ``program`` through
        :class:`~repro.dynamo.vm.DynamoVM`.  The fragment-cache budget
        and the execution tier come from this system's
        :class:`DynamoConfig` (``tier=`` overrides the config per
        call), and the VM's accounting lands under ``dynamo.vm.*``.
        """
        vm = DynamoVM(
            program,
            delay=delay,
            scheme=scheme,
            max_trace_instructions=max_trace_instructions,
            cache_budget_instructions=(
                self.config.cache_budget_instructions
            ),
            tier=tier if tier is not None else self.config.tier,
            obs=self._obs,
        )
        if memory:
            vm.load_memory(memory)
        return vm.run(max_steps=max_steps)

    def _predictor(self, scheme: str, delay: int):
        if scheme == "net":
            return NETPredictor(delay)
        if scheme == "path-profile":
            return PathProfilePredictor(delay)
        raise DynamoError(
            f"unknown scheme {scheme!r}; expected one of {SCHEMES}"
        )

    # ------------------------------------------------------------------
    def run_detailed(
        self,
        trace: PathTrace,
        scheme: str = "net",
        delay: int = 50,
        flush_on_phase_change: bool = False,
        monitor: PredictionRateMonitor | None = None,
        fragment_sizes: dict[int, int] | None = None,
    ) -> DynamoRun:
        """Event-level simulation with an explicit fragment cache.

        Semantics match :meth:`run`'s cost model occurrence for
        occurrence; additionally models Dynamo's capacity flushes through
        the real :class:`FragmentCache` and, when
        ``flush_on_phase_change`` is set, the §6.1 prediction-rate flush
        heuristic (counters and cache restart after each flush).

        ``fragment_sizes`` maps path id → *measured* optimized
        instruction count (see :func:`measured_fragment_sizes`); when
        given, fragment execution and cache occupancy use the measured
        sizes instead of ``n × fragment_speedup`` — the configuration
        used by the ISA-trace demos where real code is optimized by
        :class:`repro.dynamo.optimizer.TraceOptimizer`.
        """
        with self._obs.span("run_detailed"):
            result = self._run_detailed(
                trace,
                scheme,
                delay,
                flush_on_phase_change,
                monitor,
                fragment_sizes,
            )
        result.publish(self._obs)
        return result

    def _run_detailed(
        self,
        trace: PathTrace,
        scheme: str,
        delay: int,
        flush_on_phase_change: bool,
        monitor: PredictionRateMonitor | None,
        fragment_sizes: dict[int, int] | None,
    ) -> DynamoRun:
        if scheme not in SCHEMES:
            raise DynamoError(
                f"unknown scheme {scheme!r}; expected one of {SCHEMES}"
            )
        config = self.config
        cache = FragmentCache(config.cache_budget_instructions)
        monitor = monitor or PredictionRateMonitor()

        instr = trace.instructions_per_path()
        profile_units = (
            trace.cond_branches_per_path() + trace.indirect_branches_per_path()
        )
        start_uids = trace.start_uids()
        arrivals = trace.backward_arrival_mask()
        path_ids = trace.path_ids

        interpretation = profiling = selection = 0.0
        fragment_execution = dispatch = flush_cycles = 0.0
        tail_start = int(len(path_ids) * (1.0 - config.steady_state_fraction))
        snapshot: dict[str, float] = {}

        head_counters: dict[int, int] = {}
        hot_heads: set[int] = set()
        path_counters: dict[int, int] = {}
        previous_cached = False
        num_fragments = 0
        bailed = False
        native_so_far = 0.0

        def full_reset() -> None:
            head_counters.clear()
            hot_heads.clear()
            path_counters.clear()
            monitor.reset()

        for index in range(len(path_ids)):
            pid = int(path_ids[index])
            n = int(instr[pid])

            if index == tail_start:
                snapshot = {
                    "interpretation": interpretation,
                    "profiling": profiling,
                    "selection": selection,
                    "fragment_execution": fragment_execution,
                    "dispatch": dispatch,
                    "native": native_so_far,
                }
            native_so_far += n * config.native_per_instr

            if flush_on_phase_change and monitor.observe(index):
                cache.flush()
                full_reset()
                flush_cycles += config.flush_penalty

            fragment = cache.lookup(pid)
            if fragment is not None:
                fragment.executions += 1
                fragment.last_executed = index
                if fragment_sizes is not None:
                    fragment_execution += (
                        fragment_sizes.get(pid, n) * config.native_per_instr
                    )
                else:
                    fragment_execution += (
                        n * config.native_per_instr * config.fragment_speedup
                    )
                if not previous_cached:
                    dispatch += config.dispatch_cost
                if scheme == "path-profile" and config.instrument_fragments:
                    profiling += (
                        profile_units[pid] * config.bit_cost
                        + config.table_cost
                    )
                previous_cached = True
                continue

            # Interpreted execution.
            interpretation += n * config.interp_per_instr
            materialize = False

            if scheme == "net":
                head = int(start_uids[pid])
                if head in hot_heads:
                    materialize = True
                elif arrivals[index]:
                    count = head_counters.get(head, 0) + 1
                    head_counters[head] = count
                    profiling += config.counter_cost
                    if count > delay:
                        hot_heads.add(head)
                        del head_counters[head]
                        materialize = True
            else:
                profiling += (
                    profile_units[pid] * config.bit_cost + config.table_cost
                )
                count = path_counters.get(pid, 0) + 1
                path_counters[pid] = count
                if count > delay:
                    materialize = True

            if materialize:
                selection += n * (
                    config.select_per_instr + config.emit_per_instr
                )
                emitted_size = (
                    fragment_sizes.get(pid, n)
                    if fragment_sizes is not None
                    else n
                )
                flushed = cache.emit(
                    Fragment(
                        path_id=pid,
                        head_uid=int(start_uids[pid]),
                        num_instructions=emitted_size,
                        created_at=index,
                    )
                )
                num_fragments += 1
                monitor.record_prediction(index)
                if flushed:
                    flush_cycles += config.flush_penalty
                    if cache.flush_count > config.bail_out_flushes:
                        bailed = True
                        break
                if num_fragments > config.bail_out_fragments:
                    bailed = True
                    break
            previous_cached = False

        native = native_cycles(trace, self.config)
        breakdown = CycleBreakdown(
            interpretation=interpretation,
            profiling=profiling,
            selection=selection,
            fragment_execution=fragment_execution,
            dispatch=dispatch,
            flushes=flush_cycles,
        )

        # Warm steady-state rate over the tail, as in the vectorized model.
        if snapshot and not bailed:
            steady_dynamo = (
                (interpretation - snapshot["interpretation"])
                + (profiling - snapshot["profiling"])
                + (selection - snapshot["selection"])
                + (fragment_execution - snapshot["fragment_execution"])
                + (dispatch - snapshot["dispatch"])
            )
            steady_native = native - snapshot["native"]
            steady_rate = (
                steady_dynamo / steady_native if steady_native > 0 else 1.0
            )
        else:
            steady_rate = 1.0

        extension = max(config.amortization - 1.0, 0.0) * native
        native_total = native + extension
        dynamo_total = breakdown.total + steady_rate * extension
        if bailed:
            dynamo_total = native_total * (1.0 + config.bail_out_overhead)

        resident = cache.fragments()
        recent_cutoff = int(len(path_ids) * 0.9)
        dead = [
            fragment
            for fragment in resident
            if fragment.last_executed < recent_cutoff
        ]
        dead_fraction = len(dead) / len(resident) if resident else 0.0

        return DynamoRun(
            benchmark=trace.name,
            scheme=scheme,
            delay=delay,
            native_cycles=native_total,
            dynamo_cycles=dynamo_total,
            breakdown=breakdown,
            num_fragments=num_fragments,
            emitted_instructions=cache.total_emitted,
            flushes=cache.flush_count + len(monitor.flush_recommendations),
            bailed_out=bailed,
            steady_rate=steady_rate,
            amortization=config.amortization,
            resident_fragments=len(resident),
            dead_fragment_fraction=dead_fraction,
        )


def measured_fragment_sizes(
    program, trace: PathTrace
) -> dict[int, int]:
    """Optimized instruction count per path id, from the real optimizer.

    ``program`` is the :class:`repro.isa.AssembledProgram` the trace was
    recorded from; every path in the trace's table is optimized by
    :class:`repro.dynamo.optimizer.TraceOptimizer`.
    """
    from repro.dynamo.optimizer import TraceOptimizer

    optimizer = TraceOptimizer(program)
    sizes: dict[int, int] = {}
    for path_id in range(trace.num_paths):
        fragment = optimizer.optimize(trace.table.path(path_id))
        sizes[path_id] = fragment.optimized_instructions
    return sizes
