"""Cost-model configuration of the Dynamo simulator.

All costs are in abstract cycles per unit, scaled so that one native
instruction costs 1.  The defaults are calibrated to paper-era figures:
Dynamo's interpreter ran at roughly 10–20× native; fragment code ran
~10–20% faster than native thanks to trace layout and lightweight
optimization; building a fragment (record + optimize + emit) cost on the
order of 10² cycles per emitted instruction, amortized over reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DynamoError

#: Execution tiers of the miniature Dynamo VM, slowest to fastest:
#: ``interp`` runs the plain interpreter with no profiling at all,
#: ``fragments`` interprets recorded fragments one VMStep at a time,
#: ``compiled`` runs fragments as closure-specialized superblocks with
#: direct fragment→fragment linking (see :mod:`repro.dynamo.compiler`).
TIERS = ("interp", "fragments", "compiled")


@dataclass(frozen=True)
class DynamoConfig:
    """Cost constants and policies of the simulated Dynamo.

    Attributes
    ----------
    interp_per_instr:
        Cycles to interpret one instruction (no profiling included).
    native_per_instr:
        Cycles per instruction of the native binary (the baseline).
    fragment_speedup:
        Relative cycle count of optimized fragment code (< 1 is faster
        than native: trace layout, redundancy elimination…).
    counter_cost:
        NET: cycles per head-counter increment (backward-arrival bump).
    bit_cost:
        Path-profile: cycles per history-bit shift / indirect-target
        append while bit tracing.
    table_cost:
        Path-profile: cycles per path-table lookup+update at a path end.
    instrument_fragments:
        Path-profile: whether bit tracing stays active inside fragments.
        The scheme needs complete path frequencies — paths flowing
        through cached code must still build signatures — so Dynamo's
        path-profile port kept the instrumentation in emitted code.  NET
        needs nothing inside fragments.
    select_per_instr:
        Extra interpretation cycles per instruction while recording a
        trace (the interpret-and-collect pass).
    emit_per_instr:
        Cycles per instruction to optimize + emit a fragment.
    dispatch_cost:
        Cycles to enter the code cache from the interpreter (context
        switch).  Fragment→fragment transfers are linked and free.
    cache_budget_instructions:
        Fragment-cache capacity in emitted instructions.
    flush_penalty:
        Cycles per cache flush (when emission overflows the budget).
    bail_out_flushes:
        Bail out to native execution after this many flushes.
    bail_out_fragments:
        Bail out when the run materializes more fragments than this —
        Dynamo's "excessively many dynamic paths, no dominant reuse"
        give-up condition (paper §6: gcc, go and the other huge-path
        programs bail).
    bail_out_overhead:
        Relative slowdown reported when Dynamo bails out (the aborted
        warm-up work); the paper treats bailed-out programs as "no
        speedup".
    amortization:
        Run-length extension factor.  The reproduction's traces are
        ~2000× shorter than the paper's multi-billion-event runs, which
        exaggerates one-time warm-up costs (interpretation before
        prediction, fragment emission).  The simulator measures the warm
        steady-state cycle rate over the trace's tail and extends the
        run by this factor at that rate, restoring paper-scale
        amortization.  Set to 1.0 to report the raw short-run figures.
    steady_state_fraction:
        Fraction of the trace's tail used to estimate the warm rate.
    tier:
        Execution tier for real (VM) runs: one of :data:`TIERS`.  The
        cost model is tier-independent; the knob selects how
        :class:`repro.dynamo.vm.DynamoVM` actually executes fragments.
    """

    interp_per_instr: float = 12.0
    native_per_instr: float = 1.0
    fragment_speedup: float = 0.85
    counter_cost: float = 2.0
    bit_cost: float = 0.4
    table_cost: float = 2.0
    instrument_fragments: bool = True
    select_per_instr: float = 30.0
    emit_per_instr: float = 40.0
    dispatch_cost: float = 30.0
    cache_budget_instructions: int = 60_000
    flush_penalty: float = 50_000.0
    bail_out_flushes: int = 4
    bail_out_fragments: int = 3_500
    bail_out_overhead: float = 0.02
    amortization: float = 40.0
    steady_state_fraction: float = 0.25
    tier: str = "fragments"

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise DynamoError(
                f"unknown execution tier {self.tier!r}; expected one of "
                f"{', '.join(TIERS)}"
            )
        if self.interp_per_instr <= self.native_per_instr:
            raise DynamoError(
                "interpretation must cost more than native execution"
            )
        if not 0 < self.fragment_speedup <= 1.5:
            raise DynamoError("fragment_speedup out of a sane range")
        if self.cache_budget_instructions < 1:
            raise DynamoError("cache budget must be positive")


#: The default configuration used by the Figure 5 experiments.
DEFAULT_CONFIG = DynamoConfig()
