"""Vectorized Dynamo cost model.

Given a trace and a predictor outcome, the model charges every path
occurrence to one of three execution modes:

* **interpreted** — before the path materializes: ``n × interp`` plus the
  scheme's profiling work;
* **selection** — the occurrence that materializes the path: interpreted
  *and* recorded/optimized/emitted;
* **fragment** — every later occurrence: ``n × native × speedup`` plus a
  dispatch cost when entering the cache from the interpreter (linked
  fragment→fragment transfers are free).

The per-scheme profiling charges follow paper §4: NET bumps a head
counter on backward arrivals while interpreting; path-profile based
prediction shifts a history bit per branch and updates the path table at
every path end — and, because the scheme needs complete path frequencies
even for paths flowing through cached code, the bit tracing stays live
inside fragments (``instrument_fragments``).

This model is O(flow) in numpy and exactly matches the event-level
simulator in :mod:`repro.dynamo.system` on fragment structure; tests
assert the cycle totals agree within tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.dynamo.config import DEFAULT_CONFIG, DynamoConfig
from repro.dynamo.stats import CycleBreakdown, DynamoRun
from repro.prediction.base import PredictionOutcome
from repro.trace.recorder import PathTrace


def native_cycles(trace: PathTrace, config: DynamoConfig) -> float:
    """Cycles the native binary spends on the whole trace."""
    instr = trace.instructions_per_path()[trace.path_ids]
    return float(instr.sum()) * config.native_per_instr


def simulate_costs(
    trace: PathTrace,
    outcome: PredictionOutcome,
    config: DynamoConfig = DEFAULT_CONFIG,
    benchmark: str | None = None,
) -> DynamoRun:
    """Run the vectorized cost model for one predictor outcome."""
    n = len(trace.path_ids)
    instr_per_path = trace.instructions_per_path()
    cond_per_path = trace.cond_branches_per_path()
    indirect_per_path = trace.indirect_branches_per_path()

    # Materialization time per path (+inf when never predicted).
    never = n  # any index comparison against n is "never"
    t_per_path = np.full(trace.num_paths, never, dtype=np.int64)
    if len(outcome.predicted_ids):
        t_per_path[outcome.predicted_ids] = outcome.prediction_times

    occ_instr = instr_per_path[trace.path_ids]
    occ_profile_units = (cond_per_path + indirect_per_path)[trace.path_ids]
    t_occ = t_per_path[trace.path_ids]
    index = np.arange(n, dtype=np.int64)

    cached = index > t_occ
    selecting = index == t_occ
    interpreted = ~cached & ~selecting

    tail_start = int(n * (1.0 - config.steady_state_fraction))
    tail = index >= tail_start

    executing = interpreted | selecting
    interp_instr = float(occ_instr[executing].sum())
    interpretation = interp_instr * config.interp_per_instr
    interp_tail = (
        float(occ_instr[executing & tail].sum()) * config.interp_per_instr
    )

    # Scheme-specific profiling charges.
    if outcome.scheme.startswith("net"):
        arrivals = trace.backward_arrival_mask()
        bumps = int((arrivals & executing).sum())
        profiling = bumps * config.counter_cost
        profiling_tail = (
            int((arrivals & executing & tail).sum()) * config.counter_cost
        )
    else:
        profiled = executing
        if config.instrument_fragments:
            profiled = np.ones(n, dtype=bool)
        units = float(occ_profile_units[profiled].sum())
        profiling = units * config.bit_cost + float(
            profiled.sum()
        ) * config.table_cost
        profiled_tail = profiled & tail
        profiling_tail = float(
            occ_profile_units[profiled_tail].sum()
        ) * config.bit_cost + float(profiled_tail.sum()) * config.table_cost

    emitted = (
        int(instr_per_path[outcome.predicted_ids].sum())
        if len(outcome.predicted_ids)
        else 0
    )
    per_emit = config.select_per_instr + config.emit_per_instr
    selection = emitted * per_emit
    if len(outcome.predicted_ids):
        late = outcome.prediction_times >= tail_start
        selection_tail = (
            float(instr_per_path[outcome.predicted_ids[late]].sum()) * per_emit
        )
    else:
        selection_tail = 0.0

    fragment_rate = config.native_per_instr * config.fragment_speedup
    fragment_execution = float(occ_instr[cached].sum()) * fragment_rate
    fragment_tail = float(occ_instr[cached & tail].sum()) * fragment_rate

    # Cache entries: a cached occurrence whose predecessor was not cached.
    prev_cached = np.empty(n, dtype=bool)
    if n:
        prev_cached[0] = False
        prev_cached[1:] = cached[:-1]
    entry_mask = cached & ~prev_cached
    dispatch = int(entry_mask.sum()) * config.dispatch_cost
    dispatch_tail = int((entry_mask & tail).sum()) * config.dispatch_cost

    flushes = max(
        0,
        -(-emitted // config.cache_budget_instructions) - 1,
    )
    flush_cycles = flushes * config.flush_penalty
    bailed = (
        flushes > config.bail_out_flushes
        or outcome.num_predictions > config.bail_out_fragments
    )

    native = native_cycles(trace, config)
    breakdown = CycleBreakdown(
        interpretation=interpretation,
        profiling=profiling,
        selection=selection,
        fragment_execution=fragment_execution,
        dispatch=dispatch,
        flushes=flush_cycles,
    )

    # Asymptotic steady-state rate: the run once every path that ever
    # materializes is resident.  Used to extend the short measured run to
    # paper-scale lengths (see DynamoConfig.amortization); the measured
    # tail quantities above feed the reported breakdown only.
    steady_rate = _asymptotic_rate(trace, outcome, config)

    extension = max(config.amortization - 1.0, 0.0) * native
    native_total = native + extension
    dynamo_total = breakdown.total + steady_rate * extension
    if bailed:
        dynamo_total = native_total * (1.0 + config.bail_out_overhead)

    return DynamoRun(
        benchmark=benchmark or trace.name,
        scheme=outcome.scheme,
        delay=outcome.delay,
        native_cycles=native_total,
        dynamo_cycles=dynamo_total,
        breakdown=breakdown,
        num_fragments=outcome.num_predictions,
        emitted_instructions=emitted,
        flushes=flushes,
        bailed_out=bailed,
        steady_rate=steady_rate,
        amortization=config.amortization,
    )


def _asymptotic_rate(
    trace: PathTrace,
    outcome: PredictionOutcome,
    config: DynamoConfig,
) -> float:
    """Warm cycles per native cycle once every predicted path is cached.

    Occurrences of ever-predicted paths run in the fragment cache (plus
    dispatch at interpreter→cache entries); occurrences of never-predicted
    paths are interpreted forever, with the scheme's residual profiling.
    """
    n = len(trace.path_ids)
    if n == 0:
        return 1.0
    instr_per_path = trace.instructions_per_path()
    occ_instr = instr_per_path[trace.path_ids]
    occ_units = (
        trace.cond_branches_per_path() + trace.indirect_branches_per_path()
    )[trace.path_ids]

    ever = np.zeros(trace.num_paths, dtype=bool)
    if len(outcome.predicted_ids):
        ever[outcome.predicted_ids] = True
    ecached = ever[trace.path_ids]

    cycles = float(occ_instr[ecached].sum()) * (
        config.native_per_instr * config.fragment_speedup
    )
    cycles += float(occ_instr[~ecached].sum()) * config.interp_per_instr

    if outcome.scheme.startswith("net"):
        arrivals = trace.backward_arrival_mask()
        cycles += int((arrivals & ~ecached).sum()) * config.counter_cost
    else:
        profiled = (
            np.ones(n, dtype=bool) if config.instrument_fragments else ~ecached
        )
        cycles += (
            float(occ_units[profiled].sum()) * config.bit_cost
            + float(profiled.sum()) * config.table_cost
        )

    prev = np.empty(n, dtype=bool)
    prev[0] = False
    prev[1:] = ecached[:-1]
    cycles += int((ecached & ~prev).sum()) * config.dispatch_cost

    native = float(occ_instr.sum()) * config.native_per_instr
    return cycles / native if native > 0 else 1.0
