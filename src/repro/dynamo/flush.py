"""Phase detection via prediction-rate monitoring (paper §6.1).

Dynamo watches the *rate* of new path predictions: a sudden, sharp
increase is a strong signal that the program entered a new phase (its
working set changed, so previously-unseen paths turn hot).  Reacting with
a cache flush removes the phase-induced noise — fragments that were hot
in the old phase but are now dead weight.

:class:`PredictionRateMonitor` implements the heuristic: prediction
events are bucketed into fixed windows of path occurrences, and a window
whose count exceeds ``spike_factor`` × the trailing-median rate (after a
minimum history) recommends a flush.
"""

from __future__ import annotations

from collections import deque
from statistics import median

from repro.errors import DynamoError


class PredictionRateMonitor:
    """Windowed spike detector over prediction (materialization) events.

    Parameters
    ----------
    window:
        Window length in path occurrences.
    spike_factor:
        A window is a spike when its prediction count exceeds
        ``spike_factor × median(trailing windows)`` (and a small absolute
        floor, so start-up noise does not trigger).
    history:
        Number of trailing windows the median is computed over.
    min_count:
        Absolute minimum predictions in a window for it to qualify.
    """

    def __init__(
        self,
        window: int = 10_000,
        spike_factor: float = 3.0,
        history: int = 8,
        min_count: int = 5,
    ):
        if window < 1:
            raise DynamoError("window must be positive")
        if spike_factor <= 1.0:
            raise DynamoError("spike_factor must exceed 1")
        self.window = window
        self.spike_factor = spike_factor
        self.min_count = min_count
        self._history: deque[int] = deque(maxlen=history)
        self._current_window = 0
        self._current_count = 0
        self.flush_recommendations: list[int] = []

    def record_prediction(self, time: int) -> None:
        """Note a prediction made at occurrence index ``time``."""
        self._advance_to(time)
        self._current_count += 1

    def observe(self, time: int) -> bool:
        """Advance to ``time``; True when a flush is recommended now.

        A recommendation is issued at most once per window, when the
        *previous* window closed as a spike.
        """
        return self._advance_to(time)

    def _advance_to(self, time: int) -> bool:
        window_index = time // self.window
        recommended = False
        while self._current_window < window_index:
            recommended = self._close_window() or recommended
            self._current_window += 1
        if recommended:
            self.flush_recommendations.append(time)
        return recommended

    def _close_window(self) -> bool:
        count = self._current_count
        self._current_count = 0
        spike = False
        if len(self._history) >= 3 and count >= self.min_count:
            baseline = median(self._history)
            spike = count > self.spike_factor * max(baseline, 1.0)
        self._history.append(count)
        return spike

    def reset(self) -> None:
        """Forget history (called after an actual flush)."""
        self._history.clear()
        self._current_count = 0
