"""Compiled fragment tier: closure-specialized superblocks with linking.

The interpreted fragment tier (:meth:`repro.dynamo.vm.DynamoVM._run_fragment`)
re-dispatches one :class:`~repro.dynamo.vm.VMStep` at a time — every hot
instruction pays a step-object fetch, a kind string compare, operand
attribute lookups and a call into the machine's semantics.  This module
removes all of it: each recorded fragment is compiled, once, into a
specialized Python closure whose body *is* the trace:

* operands are pre-decoded into literal list indices and immediates at
  compile time — the closure only ever touches ``r[3]``, never
  ``step.instruction.rs``;
* straight-line arithmetic is inlined against the pre-bound register and
  memory lists captured in the closure's cells;
* guards are straightened into early-``return`` exit stubs that carry
  their (statically known, where possible) exit pc;
* a fragment whose final target is its own head spins inside the closure
  — the superblock back-edge never re-enters the dispatcher — and
  completed fragments hand the dispatcher a *direct reference* to their
  successor's closure through patched link cells.

Linking is maintained by :class:`CompiledCache`: installing a fragment
patches every resident completion link and guard-exit stub that targets
its head (guard-exit retargeting), and eviction/flush unpatches every
cell that points at the victim so a stale closure can never be entered.

Correctness is proven, not assumed: :func:`state_digest` hashes the full
architectural state (output, registers, memory, call stack) and the test
suite requires compiled execution to be digest-identical — and
counter-identical — to the interpreted fragment tier on every bundled
ISA program (the PR 5 proof pattern applied to execution tiers).
"""

from __future__ import annotations

import hashlib

from repro.errors import DynamoError, MachineError
from repro.isa.instructions import Op

__all__ = [
    "EXIT_LOOKUP",
    "CompiledCache",
    "CompiledFragment",
    "compile_fragment",
    "state_digest",
]

#: Sentinel returned as the ``linked`` slot of a dynamic guard exit
#: (indirect jump / call / return targets are only known at run time, so
#: the dispatcher must consult the cache instead of a patched cell).
EXIT_LOOKUP = object()

#: Comparison source for each branch op, and its negation (used to turn
#: an expected-taken guard into a straightened early-exit test).
_CMP = {
    Op.BEQ: "==",
    Op.BNE: "!=",
    Op.BLT: "<",
    Op.BLE: "<=",
    Op.BGT: ">",
    Op.BGE: ">=",
}
_NEG = {
    Op.BEQ: "!=",
    Op.BNE: "==",
    Op.BLT: ">=",
    Op.BLE: ">",
    Op.BGT: "<=",
    Op.BGE: "<",
}

#: Inline templates for three-register ALU ops (SHL/SHR mask the shift
#: amount exactly like the machine does).
_ALU_EXPR = {
    Op.ADD: "r[{rs}] + r[{rt}]",
    Op.SUB: "r[{rs}] - r[{rt}]",
    Op.MUL: "r[{rs}] * r[{rt}]",
    Op.AND: "r[{rs}] & r[{rt}]",
    Op.OR: "r[{rs}] | r[{rt}]",
    Op.XOR: "r[{rs}] ^ r[{rt}]",
    Op.SHL: "r[{rs}] << (r[{rt}] & 63)",
    Op.SHR: "r[{rs}] >> (r[{rt}] & 63)",
}


def _zero_fault(what: str, pc: int) -> None:
    """Slow path for DIV/MOD by zero — same message as the machine's."""
    raise MachineError(f"{what} by zero at instruction {pc}")


class CompiledFragment:
    """One fragment compiled to a specialized closure.

    ``fn(fuel)`` executes the fragment body (looping internally over its
    own back-edge while ``fuel`` instruction-steps remain) and returns
    ``(linked, exit_pc, completed, executed, iters)``:

    * ``linked`` — the successor :class:`CompiledFragment` patched into
      the taken exit's link cell, ``None`` when the exit is cold, or
      :data:`EXIT_LOOKUP` when the exit target is dynamic;
    * ``exit_pc`` — where interpretation resumes (``None`` on halt);
    * ``completed`` — True when every guard passed and execution reached
      the fragment's final target;
    * ``executed`` — instruction-steps actually executed (partial bodies
      stop at their failing guard);
    * ``iters`` — body passes taken inside the closure (> 1 only for a
      self-linked superblock).
    """

    __slots__ = (
        "fragment",
        "head_pc",
        "final_target",
        "num_instructions",
        "n_guard_conds",
        "fn",
        "succ_cell",
        "loop_cell",
        "static_exits",
        "source",
    )

    def __init__(self, fragment, fn, succ_cell, loop_cell, static_exits,
                 n_guard_conds, source):
        self.fragment = fragment
        self.head_pc = fragment.head_pc
        self.final_target = fragment.final_target
        self.num_instructions = fragment.num_instructions
        self.n_guard_conds = n_guard_conds
        self.fn = fn
        self.succ_cell = succ_cell
        self.loop_cell = loop_cell
        self.static_exits = static_exits
        self.source = source


def compile_fragment(machine, fragment) -> CompiledFragment:
    """Compile a recorded :class:`~repro.dynamo.vm.VMFragment`.

    The generated closure captures the machine's register list, memory
    list, call stack and output buffer as cells (all four are grown in
    place by the machine, never replaced, so the references stay valid
    for the life of the run) plus one link cell per static exit.
    """
    state = machine.state
    lines: list[str] = []
    emit = lines.append
    static_exits: list[tuple[int, list]] = []
    n_guard_conds = 0
    n = fragment.num_instructions

    for index, step in enumerate(fragment.steps):
        instr = step.instruction
        op = instr.op
        done = index + 1  # steps executed once this one retires
        emit(f"        # pc {step.pc}: {instr.render()} [{step.kind}]")
        if step.kind == "exec":
            _emit_exec(emit, instr, step.pc)
        elif step.kind == "guard_cond":
            n_guard_conds += 1
            cell: list = [None]
            name = f"X{len(static_exits)}"
            if step.expected_taken:
                exit_pc = step.pc + 1
                cmp_src = _NEG[op]
            else:
                exit_pc = instr.target
                cmp_src = _CMP[op]
            static_exits.append((exit_pc, cell))
            emit(f"        if r[{instr.rs}] {cmp_src} r[{instr.rt}]:")
            emit(
                f"            return ({name}[0], {exit_pc}, False, "
                f"executed + {done}, iters)"
            )
        elif step.kind == "guard_target":
            what = "jr" if op is Op.JR else "callr"
            emit(f"        t = r[{instr.rs}]")
            if op is Op.CALLR:
                emit(f"        if t == {step.expected_target}:")
                emit(f"            push({step.pc + 1})")
                emit("        else:")
                emit(f"            check_leader(t, {what!r})")
                emit(f"            push({step.pc + 1})")
                emit(
                    f"            return (LOOKUP, t, False, "
                    f"executed + {done}, iters)"
                )
            else:
                emit(f"        if t != {step.expected_target}:")
                emit(f"            check_leader(t, {what!r})")
                emit(
                    f"            return (LOOKUP, t, False, "
                    f"executed + {done}, iters)"
                )
        elif step.kind == "guard_ret":
            emit("        if not stack:")
            emit(
                f"            return (None, None, False, "
                f"executed + {done}, iters)"
            )
            emit("        t = pop()")
            emit(f"        if t != {step.expected_target}:")
            emit(
                f"            return (LOOKUP, t, False, "
                f"executed + {done}, iters)"
            )
        elif step.kind == "halt":
            emit(
                f"        return (None, None, False, "
                f"executed + {done}, iters)"
            )
        else:  # pragma: no cover - _compile only emits the kinds above
            raise DynamoError(f"cannot compile step kind {step.kind!r}")

    body = "\n".join(lines)
    params = [
        "r", "mem", "stack", "push", "pop", "out", "check_leader",
        "ld_slow", "st_slow", "zero_fault", "LOOKUP", "LOOP", "SUCC",
        "_len",
    ] + [f"X{i}" for i in range(len(static_exits))]
    source = (
        f"def _make({', '.join(params)}):\n"
        f"    def _fragment(fuel):\n"
        f"        executed = 0\n"
        f"        iters = 0\n"
        f"        while True:\n"
        f"            iters += 1\n"
        # The while-body below is generated at 8-space depth; re-indent.
        + "\n".join("    " + line if line.strip() else line
                    for line in body.splitlines())
        + "\n"
        f"            executed += {n}\n"
        # Superblock back-edge: a self-linked fragment loops without
        # returning while the step budget allows another full pass.
        f"            if LOOP[0] and executed < fuel:\n"
        f"                continue\n"
        f"            return (SUCC[0], {fragment.final_target}, True, "
        f"executed, iters)\n"
        f"    return _fragment\n"
    )
    namespace: dict = {}
    exec(  # noqa: S102 - code is generated from the trace, not input
        compile(source, f"<fragment@{fragment.head_pc}>", "exec"), namespace
    )
    succ_cell: list = [None]
    loop_cell: list = [False]

    def ld_slow(address, _machine=machine, _mem=state.memory):
        _machine._check_memory(address)
        return _mem[address]

    def st_slow(address, value, _machine=machine, _mem=state.memory):
        _machine._check_memory(address)
        _mem[address] = value

    args = [
        state.registers,
        state.memory,
        state.call_stack,
        state.call_stack.append,
        state.call_stack.pop,
        state.output.append,
        machine._check_leader,
        ld_slow,
        st_slow,
        _zero_fault,
        EXIT_LOOKUP,
        loop_cell,
        succ_cell,
        len,
    ] + [cell for _, cell in static_exits]
    fn = namespace["_make"](*args)
    return CompiledFragment(
        fragment, fn, succ_cell, loop_cell, static_exits, n_guard_conds,
        source,
    )


def _emit_exec(emit, instr, pc: int) -> None:
    """Inline one straight-line instruction into the closure body."""
    op = instr.op
    if op is Op.LI:
        emit(f"        r[{instr.rd}] = {instr.imm}")
    elif op is Op.LA:
        emit(f"        r[{instr.rd}] = {instr.target}")
    elif op is Op.MOV:
        emit(f"        r[{instr.rd}] = r[{instr.rs}]")
    elif op in _ALU_EXPR:
        expr = _ALU_EXPR[op].format(rs=instr.rs, rt=instr.rt)
        emit(f"        r[{instr.rd}] = {expr}")
    elif op is Op.DIV or op is Op.MOD:
        what = "division" if op is Op.DIV else "modulo"
        symbol = "//" if op is Op.DIV else "%"
        emit(f"        t = r[{instr.rt}]")
        emit("        if t == 0:")
        emit(f"            zero_fault({what!r}, {pc})")
        emit(f"        r[{instr.rd}] = r[{instr.rs}] {symbol} t")
    elif op is Op.ADDI:
        emit(f"        r[{instr.rd}] = r[{instr.rs}] + {instr.imm}")
    elif op is Op.LD:
        emit(f"        a = r[{instr.rs}] + {instr.imm}")
        emit("        if 0 <= a < _len(mem):")
        emit(f"            r[{instr.rd}] = mem[a]")
        emit("        else:")
        emit(f"            r[{instr.rd}] = ld_slow(a)")
    elif op is Op.ST:
        emit(f"        a = r[{instr.rt}] + {instr.imm}")
        emit("        if 0 <= a < _len(mem):")
        emit(f"            mem[a] = r[{instr.rs}]")
        emit("        else:")
        emit(f"            st_slow(a, r[{instr.rs}])")
    elif op is Op.OUT:
        emit(f"        out(r[{instr.rs}])")
    elif op is Op.CALL:
        emit(f"        push({pc + 1})")
    elif op is Op.NOP:
        pass  # occupies a slot in the step count, emits no code
    else:  # pragma: no cover - _compile never records other ops as exec
        raise DynamoError(f"cannot inline op {op.value!r}")


class CompiledCache:
    """Resident compiled fragments plus their patched superblock links.

    The linking invariant: a completion link cell (``succ_cell``) or a
    static guard-exit cell holds a :class:`CompiledFragment` *iff* that
    fragment is currently resident at the cell's target pc.  Installing
    patches, evicting and flushing unpatch — closures consult only their
    cells, so the invariant is what makes dispatcher-free transfers
    safe.
    """

    def __init__(self):
        self._resident: dict[int, CompiledFragment] = {}
        #: Closures built over the cache's lifetime (survives flushes).
        self.compiles = 0
        #: Link cells patched to a resident fragment.
        self.link_patches = 0
        #: Link cells cleared on flush/eviction.
        self.link_unpatches = 0

    # ------------------------------------------------------------------
    def get(self, head_pc: int) -> CompiledFragment | None:
        """The compiled fragment at ``head_pc``, if resident."""
        return self._resident.get(head_pc)

    def __contains__(self, head_pc: int) -> bool:
        return head_pc in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def resident(self) -> dict[int, CompiledFragment]:
        """Snapshot of the resident fragments by head pc."""
        return dict(self._resident)

    # ------------------------------------------------------------------
    def install(self, compiled: CompiledFragment) -> None:
        """Make ``compiled`` resident and patch every affected link.

        Patches the new fragment's own completion/guard-exit cells
        against the residents, and retargets every resident cell whose
        exit pc is the new fragment's head — Dynamo's exit-stub
        patching, so earlier fragments jump straight into later ones.
        """
        previous = self._resident.pop(compiled.head_pc, None)
        if previous is not None:  # pragma: no cover - heads are unique
            self._unlink_references_to(previous)
            self._unlink_outgoing(previous)
        self._resident[compiled.head_pc] = compiled
        self.compiles += 1

        succ = self._resident.get(compiled.final_target)
        if succ is not None:
            compiled.succ_cell[0] = succ
            self.link_patches += 1
            if succ is compiled:
                compiled.loop_cell[0] = True
        for exit_pc, cell in compiled.static_exits:
            target = self._resident.get(exit_pc)
            if target is not None and cell[0] is None:
                cell[0] = target
                self.link_patches += 1

        head = compiled.head_pc
        for other in self._resident.values():
            if other is compiled:
                continue
            if other.final_target == head and other.succ_cell[0] is None:
                other.succ_cell[0] = compiled
                self.link_patches += 1
            for exit_pc, cell in other.static_exits:
                if exit_pc == head and cell[0] is None:
                    cell[0] = compiled
                    self.link_patches += 1

    def evict(self, head_pc: int) -> CompiledFragment | None:
        """Remove one fragment, unpatching every link that targets it."""
        compiled = self._resident.pop(head_pc, None)
        if compiled is None:
            return None
        self._unlink_references_to(compiled)
        self._unlink_outgoing(compiled)
        return compiled

    def flush(self) -> None:
        """Drop everything, clearing every link cell first."""
        for compiled in self._resident.values():
            self._unlink_outgoing(compiled)
        self._resident.clear()

    # ------------------------------------------------------------------
    def _unlink_outgoing(self, compiled: CompiledFragment) -> None:
        if compiled.succ_cell[0] is not None:
            compiled.succ_cell[0] = None
            self.link_unpatches += 1
        compiled.loop_cell[0] = False
        for _, cell in compiled.static_exits:
            if cell[0] is not None:
                cell[0] = None
                self.link_unpatches += 1

    def _unlink_references_to(self, compiled: CompiledFragment) -> None:
        for other in self._resident.values():
            if other.succ_cell[0] is compiled:
                other.succ_cell[0] = None
                other.loop_cell[0] = False
                self.link_unpatches += 1
            for _, cell in other.static_exits:
                if cell[0] is compiled:
                    cell[0] = None
                    self.link_unpatches += 1


def state_digest(machine) -> str:
    """SHA-256 over the machine's full architectural state.

    Output buffer, register file, data memory and call stack — the
    quantities an execution tier is *not* allowed to change.  Two tiers
    that agree on this digest after every bundled program are, for the
    reproduction's purposes, the same machine.
    """
    state = machine.state
    digest = hashlib.sha256()
    for part in (
        state.output, state.registers, state.memory, state.call_stack
    ):
        digest.update(repr(part).encode("ascii"))
        digest.update(b"|")
    return digest.hexdigest()
