"""Fragment optimization: Dynamo's "lightweight optimization techniques".

Dynamo's speedup comes from optimizing and laying out hot paths in the
code cache (paper §6): a trace is a straight-line instruction sequence,
so classic local optimizations become trivial and very effective.  This
module implements the real passes over the reproduction's ISA so that,
for traces of genuine machine code, the fragment speedup factor can be
*measured* per path instead of assumed:

* **branch straightening** — on-trace conditional branches are replaced
  by cheap exit guards; on-trace unconditional jumps disappear entirely
  (the layout is the trace);
* **constant & copy propagation** — register values known within the
  trace (``li``/``la``/``mov`` chains) fold into later uses;
* **redundant-load elimination** — a reload of the same constant or the
  same ``mov`` source is dropped;
* **dead-code elimination** — writes overwritten before any use, with
  the conservative rule that every register is live-out at trace exits.

The passes work on an explicit :class:`TraceInstruction` list, so the
optimizer is inspectable: tests assert which instructions were removed
and why, and the Dynamo demo prints measured per-fragment speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DynamoError
from repro.isa.assembler import AssembledProgram
from repro.isa.instructions import ALU_OPS, COND_BRANCHES, Instruction, Op
from repro.trace.path import Path

#: Opcodes removed outright by straightening (the trace is the layout).
_STRAIGHTENED_AWAY = frozenset({Op.JMP})

#: Opcodes that become a one-instruction exit guard on the trace.
_GUARDED = frozenset(COND_BRANCHES) | {Op.JR, Op.CALLR}


@dataclass
class TraceInstruction:
    """One instruction of a fragment under optimization."""

    instruction: Instruction
    #: Why the instruction survives / what happened to it.
    disposition: str = "kept"
    #: Whether this is a synthesized exit guard replacing a branch.
    is_guard: bool = False

    @property
    def live(self) -> bool:
        """Whether the instruction still occupies a slot."""
        return self.disposition in ("kept", "guard")


@dataclass
class OptimizedFragment:
    """The optimizer's result for one path."""

    path_blocks: tuple[int, ...]
    original_instructions: int
    instructions: list[TraceInstruction] = field(default_factory=list)

    @property
    def optimized_instructions(self) -> int:
        """Surviving instruction count."""
        return sum(1 for entry in self.instructions if entry.live)

    @property
    def speedup_factor(self) -> float:
        """Optimized size over original size (the measured S_opt)."""
        if self.original_instructions == 0:
            return 1.0
        return self.optimized_instructions / self.original_instructions

    def removed(self, disposition: str) -> int:
        """How many instructions a given pass removed."""
        return sum(
            1
            for entry in self.instructions
            if entry.disposition == disposition
        )


class TraceOptimizer:
    """Optimizes the instruction sequence of one path of a program."""

    def __init__(self, program: AssembledProgram):
        self._program = program

    # ------------------------------------------------------------------
    def optimize(self, path: Path) -> OptimizedFragment:
        """Run all passes over ``path``'s concatenated blocks."""
        entries = self._collect(path)
        fragment = OptimizedFragment(
            path_blocks=path.blocks,
            original_instructions=len(entries),
            instructions=entries,
        )
        self._straighten(entries)
        self._propagate_and_fold(entries)
        self._eliminate_dead(entries)
        return fragment

    # ------------------------------------------------------------------
    def _collect(self, path: Path) -> list[TraceInstruction]:
        program = self._program
        entries: list[TraceInstruction] = []
        for uid in path.blocks:
            block = program.cfg.block_by_uid(uid)
            start = program.leader_of.get(uid)
            if start is None:
                raise DynamoError(f"block uid {uid} is not in this program")
            for index in range(start, start + block.size):
                entries.append(
                    TraceInstruction(instruction=program.instructions[index])
                )
        return entries

    def _straighten(self, entries: list[TraceInstruction]) -> None:
        """Remove on-trace jumps; turn branches into exit guards."""
        for position, entry in enumerate(entries):
            op = entry.instruction.op
            last = position == len(entries) - 1
            if op in _STRAIGHTENED_AWAY:
                entry.disposition = "straightened"
            elif op in _GUARDED:
                # The branch's on-trace direction is implied by the next
                # block in the trace; off-trace directions exit the
                # fragment through a one-instruction guard.
                entry.disposition = "guard"
                entry.is_guard = True
            elif op in (Op.CALL, Op.RET, Op.HALT) and not last:
                # Inlined call/return pairs inside the trace keep their
                # stack effects (Dynamo emitted them too).
                entry.disposition = "kept"

    def _propagate_and_fold(self, entries: list[TraceInstruction]) -> None:
        """Constant/copy propagation with redundant-load elimination."""
        known: dict[int, tuple[str, int]] = {}  # reg -> ("const"/"la", v)
        copies: dict[int, int] = {}  # reg -> source reg
        for entry in entries:
            if not entry.live:
                continue
            instr = entry.instruction
            op = instr.op

            if op is Op.LI or op is Op.LA:
                value = (
                    ("const", instr.imm)
                    if op is Op.LI
                    else ("la", instr.target)
                )
                if known.get(instr.rd) == value:
                    entry.disposition = "redundant-load"
                    continue
                known[instr.rd] = value
                copies.pop(instr.rd, None)
                continue
            if op is Op.MOV:
                source = copies.get(instr.rs, instr.rs)
                if copies.get(instr.rd) == source and instr.rd in copies:
                    entry.disposition = "redundant-copy"
                    continue
                if instr.rs in known and known.get(instr.rd) == known[instr.rs]:
                    entry.disposition = "redundant-copy"
                    continue
                if instr.rs in known:
                    known[instr.rd] = known[instr.rs]
                else:
                    known.pop(instr.rd, None)
                copies[instr.rd] = source
                continue

            # Generic: any write invalidates knowledge of the target.
            written = instr.rd if op in ALU_OPS or op in (
                Op.ADDI,
                Op.LD,
            ) else None
            if written is not None:
                known.pop(written, None)
                copies.pop(written, None)
            if entry.is_guard or op in (Op.CALL, Op.CALLR, Op.RET):
                # Control leaving the straight line invalidates nothing
                # for *our* registers, but inlined callees may clobber:
                # be conservative across calls.
                if op in (Op.CALL, Op.CALLR):
                    known.clear()
                    copies.clear()

    def _eliminate_dead(self, entries: list[TraceInstruction]) -> None:
        """Backward pass: drop writes never read before the next write.

        Every register is assumed live at trace exits (guards) and at
        the trace end, so only writes *provably* overwritten within the
        straight line with no intervening read or exit are removed.
        """
        needed: set[int] = set(range(16))
        for entry in reversed(entries):
            if not entry.live:
                continue
            instr = entry.instruction
            op = instr.op
            if entry.is_guard or op in (
                Op.CALL,
                Op.CALLR,
                Op.RET,
                Op.HALT,
                Op.OUT,
                Op.ST,
            ):
                needed = set(range(16))
                continue
            writes = (
                instr.rd
                if (op in ALU_OPS or op in (Op.ADDI, Op.LD, Op.LI, Op.LA, Op.MOV))
                else None
            )
            reads = {
                reg
                for reg in (instr.rs, instr.rt)
                if reg is not None
            }
            if writes is not None and writes not in needed:
                entry.disposition = "dead"
                continue
            if writes is not None:
                needed.discard(writes)
            needed.update(reads)


def measure_fragment_speedups(
    program: AssembledProgram, paths: list[Path]
) -> dict[tuple[int, ...], OptimizedFragment]:
    """Optimize every path; keyed by block sequence."""
    optimizer = TraceOptimizer(program)
    return {path.blocks: optimizer.optimize(path) for path in paths}
