"""Result records of Dynamo simulation runs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.core import Registry, get_registry


@dataclass(frozen=True)
class CycleBreakdown:
    """Where the simulated run's cycles went."""

    interpretation: float = 0.0
    profiling: float = 0.0
    selection: float = 0.0
    fragment_execution: float = 0.0
    dispatch: float = 0.0
    flushes: float = 0.0

    @property
    def total(self) -> float:
        """All cycles spent under Dynamo."""
        return (
            self.interpretation
            + self.profiling
            + self.selection
            + self.fragment_execution
            + self.dispatch
            + self.flushes
        )

    def publish(self, obs: Registry | None) -> None:
        """Accumulate this breakdown into an obs registry.

        One counter per component (relative to ``obs``), so cycles sum
        cleanly across runs.  No-op on the null registry.
        """
        reg = get_registry(obs)
        reg.counter("interpretation").inc(self.interpretation)
        reg.counter("profiling").inc(self.profiling)
        reg.counter("selection").inc(self.selection)
        reg.counter("fragment_execution").inc(self.fragment_execution)
        reg.counter("dispatch").inc(self.dispatch)
        reg.counter("flushes").inc(self.flushes)


@dataclass(frozen=True)
class DynamoRun:
    """Outcome of simulating one (benchmark, scheme, delay) cell.

    ``speedup_percent`` is Dynamo's gain over native execution, the
    quantity Figure 5 plots: positive means Dynamo is faster.
    """

    benchmark: str
    scheme: str
    delay: int
    native_cycles: float
    dynamo_cycles: float
    breakdown: CycleBreakdown
    num_fragments: int
    emitted_instructions: int
    flushes: int
    bailed_out: bool
    #: Warm (post-warm-up) Dynamo cycles per native cycle.
    steady_rate: float = 1.0
    #: Run-length extension applied (see DynamoConfig.amortization).
    amortization: float = 1.0
    #: Fragments resident in the cache when the run ended.
    resident_fragments: int = 0
    #: Fraction of resident fragments not executed in the run's last
    #: tenth — the phase-induced noise the flush heuristic removes.
    dead_fragment_fraction: float = 0.0

    @property
    def speedup_percent(self) -> float:
        """Speedup over native execution (Figure 5's x-axis)."""
        if self.dynamo_cycles <= 0:
            return 0.0
        return 100.0 * (self.native_cycles / self.dynamo_cycles - 1.0)

    @property
    def cached_flow_fraction(self) -> float:
        """Fraction of cycles spent in the fragment cache."""
        total = self.breakdown.total
        if total <= 0:
            return 0.0
        return self.breakdown.fragment_execution / total

    def render(self) -> str:
        """One-line report form."""
        tag = " BAIL-OUT" if self.bailed_out else ""
        return (
            f"{self.benchmark:>10s} {self.scheme:>12s} τ={self.delay:<4d} "
            f"speedup={self.speedup_percent:+7.2f}% "
            f"fragments={self.num_fragments:>6,} flushes={self.flushes}{tag}"
        )

    def publish(self, obs: Registry | None) -> None:
        """Accumulate this run's accounting into an obs registry.

        Counters (relative to ``obs``): ``runs``, ``native_cycles``,
        ``dynamo_cycles``, ``fragments``, ``emitted_instructions``,
        ``flushes``, ``bail_outs`` and the per-component cycle counters
        under ``cycles.*``.  ``resident_fragments`` is a gauge (last run
        wins).  No-op on the null registry.
        """
        reg = get_registry(obs)
        reg.counter("runs").inc()
        reg.counter("native_cycles").inc(self.native_cycles)
        reg.counter("dynamo_cycles").inc(self.dynamo_cycles)
        reg.counter("fragments").inc(self.num_fragments)
        reg.counter("emitted_instructions").inc(self.emitted_instructions)
        reg.counter("flushes").inc(self.flushes)
        if self.bailed_out:
            reg.counter("bail_outs").inc()
        reg.gauge("resident_fragments").set(self.resident_fragments)
        self.breakdown.publish(reg.child("cycles"))
