"""A working miniature Dynamo: interpret, profile, compile, run.

Where :mod:`repro.dynamo.system` *models* Dynamo's costs over path
traces, this module *is* a small Dynamo for the reproduction's ISA.  It
executes real programs the way the paper's system does:

1. **interpret** instructions, bumping a NET counter whenever a backward
   taken branch lands on a target (paper §4.2's "only profiling the
   potential trace heads");
2. once a counter exceeds the prediction delay τ, **record the next
   executing tail** while continuing to interpret — exactly the
   speculative NET selection;
3. **compile** the recorded trace into a fragment: on-trace jumps
   disappear (the layout is the trace), conditional branches become
   guards that exit to the interpreter when execution diverges, indirect
   jumps/calls guard on their recorded target, returns guard on the
   recorded continuation;
4. **execute fragments natively**, chaining fragment→fragment transfers
   without dispatch (linking);
5. plant **exit counters** on guard exits — Dynamo's secondary trace
   heads — so the working set's other hot tails materialize too.

Fragment execution comes in three tiers (:data:`repro.dynamo.config.TIERS`):

``interp``
    The honest baseline: plain interpretation, no profiling, no
    fragments.  What running the program costs without Dynamo.
``fragments``
    The default: recorded fragments are re-interpreted one
    :class:`VMStep` at a time by :meth:`DynamoVM._run_fragment`.
``compiled``
    Each fragment is additionally compiled — once — into a specialized
    Python closure (:mod:`repro.dynamo.compiler`): operands pre-decoded,
    straight-line arithmetic inlined, guards straightened into
    early-return exit stubs, superblock back-edges looping inside the
    closure, and completion/guard exits linked directly to the successor
    fragment's closure so hot code never re-enters the dispatcher.

Correctness is testable, not assumed: for every bundled program the VM's
output must equal the plain interpreter's, whatever mix of interpreted
and fragment execution produced it — and the compiled tier must be
digest-identical (:meth:`DynamoVM.state_digest`) *and* counter-identical
to the interpreted fragment tier.  The VM also keeps the same cycle
accounting as the cost model, so measured speedups of real executions
can be compared with the simulator's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dynamo.compiler import (
    EXIT_LOOKUP,
    CompiledCache,
    CompiledFragment,
    compile_fragment,
    state_digest,
)
from repro.dynamo.config import DEFAULT_CONFIG, TIERS, DynamoConfig
from repro.errors import DynamoError, MachineLimitExceeded
from repro.isa.assembler import AssembledProgram
from repro.isa.instructions import (
    BLOCK_TERMINATORS,
    COND_BRANCHES,
    Instruction,
    Op,
)
from repro.isa.machine import DEFAULT_MEMORY_WORDS, Machine
from repro.obs.core import Registry, get_registry

#: Trace-length cap in recorded instructions (Dynamo bounded traces).
DEFAULT_MAX_TRACE_INSTRUCTIONS = 128


@dataclass
class VMStep:
    """One compiled fragment slot."""

    pc: int
    instruction: Instruction
    #: "exec", "guard_cond", "guard_target", "guard_ret", or "halt".
    kind: str = "exec"
    #: guard_cond: the recorded direction.
    expected_taken: bool = False
    #: guard_target / guard_ret / call: the recorded next pc.
    expected_target: int = -1


@dataclass
class VMFragment:
    """A compiled trace resident in the VM's code cache."""

    head_pc: int
    steps: list[VMStep]
    #: Where execution continues after the last step.
    final_target: int
    created_at_step: int
    executions: int = 0
    #: Executions that passed every guard and reached ``final_target``.
    #: An execution that halts mid-body counts in ``executions`` but
    #: never here.
    completions: int = 0
    guard_exits: int = 0

    @property
    def num_instructions(self) -> int:
        """Occupied slots (the cache-budget unit)."""
        return len(self.steps)


@dataclass
class VMStats:
    """Everything the VM counts during a run."""

    interpreted_instructions: int = 0
    fragment_instructions: int = 0
    counter_bumps: int = 0
    #: Path-profile mode: history-bit shifts (interpreter + fragments).
    shift_ops: int = 0
    #: Path-profile mode: path-table updates.
    table_ops: int = 0
    recorded_instructions: int = 0
    fragments_built: int = 0
    fragment_entries: int = 0
    #: Fragment executions that passed every guard (tier-independent).
    fragment_completions: int = 0
    linked_transfers: int = 0
    guard_exits: int = 0
    flushes: int = 0
    #: Compiled tier only: closures built over the run (survives flushes).
    fragments_compiled: int = 0
    #: Compiled tier only: superblock link cells patched / unpatched.
    link_patches: int = 0
    link_unpatches: int = 0

    def cycles(self, config: DynamoConfig) -> float:
        """Dynamo cycles under the shared cost model."""
        return (
            self.interpreted_instructions * config.interp_per_instr
            + self.fragment_instructions
            * config.native_per_instr
            * config.fragment_speedup
            + self.counter_bumps * config.counter_cost
            + self.shift_ops * config.bit_cost
            + self.table_ops * config.table_cost
            + self.recorded_instructions
            * (config.select_per_instr + config.emit_per_instr)
            + self.fragment_entries * config.dispatch_cost
            + self.flushes * config.flush_penalty
        )

    def native_cycles(self, config: DynamoConfig) -> float:
        """What the same instruction stream costs natively."""
        total = self.interpreted_instructions + self.fragment_instructions
        return total * config.native_per_instr

    @property
    def cached_fraction(self) -> float:
        """Share of instructions executed inside fragments."""
        total = self.interpreted_instructions + self.fragment_instructions
        if total == 0:
            return 0.0
        return self.fragment_instructions / total

    def publish(self, obs: Registry | None) -> None:
        """Accumulate these counts into an obs registry.

        One counter per field (relative to ``obs``), published once at
        the end of a run — the dispatch loop itself stays uninstrumented
        so measurement never costs cycles.  No-op on the null registry.
        """
        reg = get_registry(obs)
        reg.counter("interpreted_instructions").inc(
            self.interpreted_instructions
        )
        reg.counter("fragment_instructions").inc(self.fragment_instructions)
        reg.counter("counter_bumps").inc(self.counter_bumps)
        reg.counter("shift_ops").inc(self.shift_ops)
        reg.counter("table_ops").inc(self.table_ops)
        reg.counter("recorded_instructions").inc(self.recorded_instructions)
        reg.counter("fragments_built").inc(self.fragments_built)
        reg.counter("fragment_entries").inc(self.fragment_entries)
        reg.counter("fragment_completions").inc(self.fragment_completions)
        reg.counter("linked_transfers").inc(self.linked_transfers)
        reg.counter("guard_exits").inc(self.guard_exits)
        reg.counter("flushes").inc(self.flushes)
        reg.counter("fragments_compiled").inc(self.fragments_compiled)
        reg.counter("link_patches").inc(self.link_patches)
        reg.counter("link_unpatches").inc(self.link_unpatches)


@dataclass
class VMResult:
    """Outcome of one VM run."""

    output: list[int]
    stats: VMStats
    fragments: dict[int, VMFragment] = field(default_factory=dict)
    #: Compiled tier: resident closures by head pc at run end.
    compiled: dict[int, CompiledFragment] = field(default_factory=dict)
    #: Periodic (interpreted, fragment, shift-op, table-op) checkpoints.
    checkpoints: list[tuple[int, int, int, int]] = field(
        default_factory=list
    )

    def speedup_percent(self, config: DynamoConfig = DEFAULT_CONFIG) -> float:
        """Raw short-run speedup over native (warm-up included)."""
        dynamo = self.stats.cycles(config)
        if dynamo <= 0:
            return 0.0
        return 100.0 * (self.stats.native_cycles(config) / dynamo - 1.0)

    def steady_rate(self, config: DynamoConfig = DEFAULT_CONFIG) -> float:
        """Warm Dynamo cycles per native cycle, from the run's tail.

        Measured over the final quarter of the checkpoint series, where
        the working set is resident; one-time selection costs are
        excluded (they amortize over long runs).
        """
        if len(self.checkpoints) < 4:
            interp = self.stats.interpreted_instructions
            cached = self.stats.fragment_instructions
            shifts = self.stats.shift_ops
            tables = self.stats.table_ops
        else:
            cut = len(self.checkpoints) * 3 // 4
            last, base = self.checkpoints[-1], self.checkpoints[cut]
            interp = last[0] - base[0]
            cached = last[1] - base[1]
            shifts = last[2] - base[2]
            tables = last[3] - base[3]
        total = interp + cached
        if total == 0:
            return 1.0
        dynamo = (
            interp * config.interp_per_instr
            + cached * config.native_per_instr * config.fragment_speedup
            + shifts * config.bit_cost
            + tables * config.table_cost
        )
        return dynamo / (total * config.native_per_instr)

    def steady_speedup_percent(
        self, config: DynamoConfig = DEFAULT_CONFIG
    ) -> float:
        """Warm steady-state speedup over native."""
        rate = self.steady_rate(config)
        if rate <= 0:
            return 0.0
        return 100.0 * (1.0 / rate - 1.0)


class DynamoVM:
    """The miniature Dynamo.

    Parameters
    ----------
    program:
        The assembled program to accelerate.
    delay:
        NET prediction delay τ for head and exit counters.
    max_trace_instructions:
        Trace-length cap.
    cache_budget_instructions:
        Fragment-cache capacity; overflow flushes everything (Dynamo's
        policy) and restarts the counters.
    tier:
        Execution tier, one of :data:`repro.dynamo.config.TIERS`:
        ``interp`` (plain interpreter, no profiling), ``fragments``
        (step-interpreted fragments — the default) or ``compiled``
        (closure-specialized superblocks with linking).
    obs:
        Optional metrics registry; the VM's accounting is published
        under ``vm.*`` relative to it when a run finishes.  Without it
        nothing is measured.
    """

    def __init__(
        self,
        program: AssembledProgram,
        delay: int = 50,
        scheme: str = "net",
        max_trace_instructions: int = DEFAULT_MAX_TRACE_INSTRUCTIONS,
        cache_budget_instructions: int = 60_000,
        memory_words: int = DEFAULT_MEMORY_WORDS,
        tier: str = "fragments",
        obs: Registry | None = None,
    ):
        if delay < 0:
            raise DynamoError("delay must be non-negative")
        if scheme not in ("net", "path-profile"):
            raise DynamoError(f"unknown VM scheme {scheme!r}")
        if max_trace_instructions < 2:
            raise DynamoError("traces need at least two instructions")
        if tier not in TIERS:
            raise DynamoError(
                f"unknown execution tier {tier!r}; expected one of "
                f"{', '.join(TIERS)}"
            )
        self.program = program
        self.delay = delay
        self.scheme = scheme
        self.tier = tier
        self.max_trace_instructions = max_trace_instructions
        self.cache_budget = cache_budget_instructions
        self._machine = Machine(program, memory_words=memory_words)
        self._obs = get_registry(obs).child("vm")

    # ------------------------------------------------------------------
    def load_memory(self, values: list[int], base: int = 0) -> None:
        """Pre-populate data memory (program input)."""
        self._machine.load_memory(values, base)

    def state_digest(self) -> str:
        """Digest of the machine's architectural state.

        The PR 5 proof pattern applied to execution tiers: two runs that
        agree on this digest produced the same output, registers, memory
        and call stack, whatever mix of interpreted, step-interpreted
        and compiled execution got them there.
        """
        return state_digest(self._machine)

    # ------------------------------------------------------------------
    def run(self, max_steps: int = 10_000_000) -> VMResult:
        """Execute until HALT; returns output, stats and the cache.

        The run's wall time lands in the ``vm.run`` timer and the final
        :class:`VMStats` in ``vm.*`` counters — published once here, so
        the dispatch loop pays nothing for observability.
        """
        with self._obs.span("run"):
            result = self._run(max_steps)
        result.stats.publish(self._obs)
        self._obs.gauge("resident_fragments").set(len(result.fragments))
        if self.tier == "compiled":
            self._obs.gauge("resident_compiled").set(len(result.compiled))
        return result

    def _run(self, max_steps: int) -> VMResult:
        if self.tier == "interp":
            return self._run_interp(max_steps)
        machine = self._machine
        state = machine.state
        instructions = self.program.instructions
        # Hot-loop locals: every name below is touched per interpreted
        # instruction; binding them once beats attribute lookups in the
        # dispatch loop.
        regs = state.registers
        memory = state.memory
        execute = machine._execute_straightline
        interpret = self._interpret
        terminators = BLOCK_TERMINATORS
        cond_branches = COND_BRANCHES
        max_trace = self.max_trace_instructions
        stats = VMStats()
        fragments: dict[int, VMFragment] = {}
        compiled_tier = self.tier == "compiled"
        ccache = CompiledCache() if compiled_tier else None
        occupancy = 0
        counters: dict[int, int] = {}
        hot: set[int] = set()
        recording: list[tuple[int, bool, int]] | None = None
        recording_head = -1
        steps = 0
        checkpoints: list[tuple[int, int, int, int]] = []
        next_checkpoint = 2048
        path_profile = self.scheme == "path-profile"
        # Path-profile mode: the always-on shadow segment (bit tracing).
        segment: list[tuple[int, bool, int]] = []
        segment_head = state.pc
        segment_bits: list[int] = []
        path_counts: dict[tuple, int] = {}

        def bump(target_pc: int) -> None:
            nonlocal recording, recording_head
            if target_pc in hot or target_pc in fragments:
                return
            count = counters.get(target_pc, 0) + 1
            counters[target_pc] = count
            stats.counter_bumps += 1
            if count > self.delay and recording is None:
                hot.add(target_pc)
                counters.pop(target_pc, None)
                recording = []
                recording_head = target_pc

        def install(trace, head_pc, final_target) -> None:
            nonlocal occupancy
            if len(trace) < 2:
                return
            fragment = self._compile(trace, head_pc, final_target, steps)
            stats.recorded_instructions += len(trace)
            stats.fragments_built += 1
            if occupancy + fragment.num_instructions > self.cache_budget:
                fragments.clear()
                if ccache is not None:
                    ccache.flush()
                occupancy = 0
                counters.clear()
                hot.clear()
                path_counts.clear()
                stats.flushes += 1
            fragments[fragment.head_pc] = fragment
            occupancy += fragment.num_instructions
            if ccache is not None:
                ccache.install(compile_fragment(machine, fragment))

        def finish_recording(final_target: int) -> None:
            nonlocal recording, recording_head
            trace = recording
            recording = None
            if trace is None:
                return
            install(trace, recording_head, final_target)

        def end_segment(final_target: int) -> None:
            """Path-profile mode: a segment (path) just completed."""
            nonlocal segment, segment_head, segment_bits
            stats.table_ops += 1
            key = (segment_head, tuple(segment_bits))
            count = path_counts.get(key, 0) + 1
            path_counts[key] = count
            if count > self.delay and segment_head not in fragments:
                install(list(segment), segment_head, final_target)
            segment = []
            segment_head = final_target
            segment_bits = []

        def checkpoint() -> None:
            nonlocal next_checkpoint
            while steps >= next_checkpoint:
                checkpoints.append(
                    (
                        stats.interpreted_instructions,
                        stats.fragment_instructions,
                        stats.shift_ops,
                        stats.table_ops,
                    )
                )
                next_checkpoint += 2048

        def finish() -> VMResult:
            if ccache is not None:
                stats.fragments_compiled = ccache.compiles
                stats.link_patches = ccache.link_patches
                stats.link_unpatches = ccache.link_unpatches
            return VMResult(
                output=state.output,
                stats=stats,
                fragments=fragments,
                compiled=ccache.resident() if ccache is not None else {},
                checkpoints=checkpoints,
            )

        while True:
            if steps >= max_steps:
                raise MachineLimitExceeded(steps)
            checkpoint()

            if compiled_tier:
                cf = ccache.get(state.pc)
                if cf is not None and recording is None:
                    if path_profile:
                        segment = []
                        segment_bits = []
                    stats.fragment_entries += 1
                    while cf is not None:
                        linked, exit_pc, completed, executed, iters = cf.fn(
                            max_steps - steps
                        )
                        frag = cf.fragment
                        frag.executions += iters
                        stats.fragment_instructions += executed
                        # Accounting identity with the fragments tier:
                        # every pass charges the full fragment size even
                        # when a guard exits early, and each internal
                        # superblock back-edge is a completed, linked
                        # execution.
                        steps += iters * cf.num_instructions
                        back_edges = iters - 1
                        if back_edges:
                            stats.linked_transfers += back_edges
                            frag.completions += back_edges
                            stats.fragment_completions += back_edges
                        checkpoint()
                        if steps >= max_steps:
                            raise MachineLimitExceeded(steps)
                        if path_profile:
                            # The halting pass never reaches its path
                            # end; every other pass counted its own path
                            # exactly like the fragments tier.
                            passes = (
                                iters if exit_pc is not None else back_edges
                            )
                            if passes:
                                stats.shift_ops += cf.n_guard_conds * passes
                                stats.table_ops += passes
                        if exit_pc is None:
                            return finish()
                        state.pc = exit_pc
                        if path_profile:
                            segment = []
                            segment_head = exit_pc
                            segment_bits = []
                        if completed:
                            frag.completions += 1
                            stats.fragment_completions += 1
                            if linked is not None:
                                stats.linked_transfers += 1
                            cf = linked
                        else:
                            frag.guard_exits += 1
                            stats.guard_exits += 1
                            if linked is EXIT_LOOKUP:
                                linked = ccache.get(exit_pc)
                            if linked is not None:
                                stats.linked_transfers += 1
                                cf = linked
                            else:
                                if not path_profile:
                                    bump(exit_pc)
                                cf = None
                    continue
            else:
                fragment = fragments.get(state.pc)
                if fragment is not None and recording is None:
                    if path_profile:
                        segment = []
                        segment_bits = []
                    stats.fragment_entries += 1
                    while fragment is not None:
                        exit_pc, completed = self._run_fragment(
                            fragment, stats
                        )
                        steps += fragment.num_instructions
                        checkpoint()
                        if steps >= max_steps:
                            raise MachineLimitExceeded(steps)
                        if exit_pc is None:
                            return finish()
                        state.pc = exit_pc
                        if path_profile:
                            # The instrumented fragment counted its own
                            # path; the interpreter resumes a fresh
                            # segment here.
                            stats.shift_ops += sum(
                                1
                                for step in fragment.steps
                                if step.kind == "guard_cond"
                            )
                            stats.table_ops += 1
                            segment = []
                            segment_head = exit_pc
                            segment_bits = []
                        next_fragment = fragments.get(exit_pc)
                        if not completed:
                            if next_fragment is not None:
                                # Exit-stub linking: Dynamo patches guard
                                # exits to jump straight into the target
                                # fragment — no dispatch, no interpreter.
                                stats.linked_transfers += 1
                                fragment = next_fragment
                            else:
                                if not path_profile:
                                    # Cold exit: plant a secondary trace
                                    # head (NET's exit counters).
                                    bump(exit_pc)
                                fragment = None
                        else:
                            fragment.completions += 1
                            stats.fragment_completions += 1
                            if next_fragment is not None:
                                stats.linked_transfers += 1
                            fragment = next_fragment
                    continue

            # ----------------------------------------------------------
            # Interpret one instruction.
            pc = state.pc
            instr = instructions[pc]
            steps += 1
            stats.interpreted_instructions += 1
            op = instr.op
            if op in terminators:
                next_pc, taken, halted = interpret(instr, pc)
                if halted:
                    if recording is not None:
                        recording = None
                    return finish()
            else:
                # Straight-line fast path: no control flow, so taken is
                # statically False and next_pc is pc + 1.  state.pc is
                # set (not saved/restored) so memory faults still report
                # the right instruction; the loop overwrites it below.
                state.pc = pc
                execute(instr, regs, memory)
                next_pc = pc + 1
                taken = False

            if recording is not None:
                recording.append((pc, taken, next_pc))

            backward_taken = taken and next_pc <= pc
            if path_profile:
                segment.append((pc, taken, next_pc))
                if op in cond_branches:
                    segment_bits.append(int(taken))
                    stats.shift_ops += 1
                if backward_taken or len(segment) >= max_trace:
                    end_segment(next_pc)
            elif backward_taken:
                if recording is not None:
                    finish_recording(next_pc)
                bump(next_pc)
            elif recording is not None and len(recording) >= max_trace:
                finish_recording(next_pc)

            state.pc = next_pc

    # ------------------------------------------------------------------
    def _run_interp(self, max_steps: int) -> VMResult:
        """The ``interp`` tier: plain interpretation, no profiling.

        No counters, no recording, no fragments — the baseline the
        other tiers are measured against.
        """
        machine = self._machine
        state = machine.state
        instructions = self.program.instructions
        regs = state.registers
        memory = state.memory
        execute = machine._execute_straightline
        interpret = self._interpret
        terminators = BLOCK_TERMINATORS
        stats = VMStats()
        steps = 0
        checkpoints: list[tuple[int, int, int, int]] = []
        next_checkpoint = 2048
        while True:
            if steps >= max_steps:
                raise MachineLimitExceeded(steps)
            while steps >= next_checkpoint:
                checkpoints.append(
                    (stats.interpreted_instructions, 0, 0, 0)
                )
                next_checkpoint += 2048
            pc = state.pc
            instr = instructions[pc]
            steps += 1
            stats.interpreted_instructions += 1
            if instr.op in terminators:
                next_pc, _taken, halted = interpret(instr, pc)
                if halted:
                    return VMResult(
                        output=state.output,
                        stats=stats,
                        checkpoints=checkpoints,
                    )
                state.pc = next_pc
            else:
                state.pc = pc
                execute(instr, regs, memory)
                state.pc = pc + 1

    # ------------------------------------------------------------------
    def _interpret(
        self, instr: Instruction, pc: int
    ) -> tuple[int, bool, bool]:
        """Execute one instruction; returns (next_pc, taken, halted)."""
        machine = self._machine
        state = machine.state
        regs = state.registers
        op = instr.op

        if op in COND_BRANCHES:
            if machine._compare(op, regs[instr.rs], regs[instr.rt]):
                return instr.target, True, False
            return pc + 1, False, False
        if op is Op.JMP:
            return instr.target, True, False
        if op is Op.JR:
            target = regs[instr.rs]
            machine._check_leader(target, "jr")
            return target, True, False
        if op is Op.CALL:
            state.call_stack.append(pc + 1)
            return instr.target, True, False
        if op is Op.CALLR:
            target = regs[instr.rs]
            machine._check_leader(target, "callr")
            state.call_stack.append(pc + 1)
            return target, True, False
        if op is Op.RET:
            if not state.call_stack:
                return pc, False, True
            return state.call_stack.pop(), True, False
        if op is Op.HALT:
            return pc, False, True

        # Straight-line execution through the machine's own semantics.
        # The caller overwrites state.pc afterwards; setting it here
        # (without save/restore) keeps fault messages pointing at the
        # faulting instruction.
        state.pc = pc
        machine._execute_straightline(instr, regs, state.memory)
        return pc + 1, False, False

    # ------------------------------------------------------------------
    def _compile(
        self,
        trace: list[tuple[int, bool, int]],
        head_pc: int,
        final_target: int,
        at_step: int,
    ) -> VMFragment:
        """Straighten a recorded trace into a guarded fragment."""
        instructions = self.program.instructions
        steps: list[VMStep] = []
        known: dict[int, tuple[str, int]] = {}
        for pc, taken, next_pc in trace:
            instr = instructions[pc]
            op = instr.op
            if op is Op.JMP:
                continue  # the layout is the trace
            if op in COND_BRANCHES:
                steps.append(
                    VMStep(
                        pc=pc,
                        instruction=instr,
                        kind="guard_cond",
                        expected_taken=taken,
                    )
                )
                continue
            if op in (Op.JR, Op.CALLR):
                steps.append(
                    VMStep(
                        pc=pc,
                        instruction=instr,
                        kind="guard_target",
                        expected_target=next_pc,
                    )
                )
                known.clear()
                continue
            if op is Op.RET:
                steps.append(
                    VMStep(
                        pc=pc,
                        instruction=instr,
                        kind="guard_ret",
                        expected_target=next_pc,
                    )
                )
                continue
            if op is Op.CALL:
                steps.append(
                    VMStep(pc=pc, instruction=instr, kind="exec")
                )
                known.clear()
                continue
            if op is Op.HALT:
                steps.append(VMStep(pc=pc, instruction=instr, kind="halt"))
                continue
            # Safe redundant-constant elimination: reloading the value a
            # register already holds is a no-op at any exit.
            if op in (Op.LI, Op.LA):
                value = (
                    ("const", instr.imm) if op is Op.LI else ("la", instr.target)
                )
                if known.get(instr.rd) == value:
                    continue
                known[instr.rd] = value
            else:
                written = instr.rd
                if written is not None:
                    known.pop(written, None)
            steps.append(VMStep(pc=pc, instruction=instr, kind="exec"))
        return VMFragment(
            head_pc=head_pc,
            steps=steps,
            final_target=final_target,
            created_at_step=at_step,
        )

    # ------------------------------------------------------------------
    def _run_fragment(
        self, fragment: VMFragment, stats: VMStats
    ) -> tuple[int | None, bool]:
        """Execute a fragment; returns (exit pc or None-on-halt, completed).

        ``completed`` is True when every guard passed and execution
        reaches the fragment's final target (eligible for linking).
        """
        machine = self._machine
        state = machine.state
        # Hot-loop locals: one binding per fragment execution instead of
        # one attribute walk per step.
        regs = state.registers
        memory = state.memory
        call_stack = state.call_stack
        execute = machine._execute_straightline
        compare = machine._compare
        fragment.executions += 1
        executed = 0

        for step in fragment.steps:
            executed += 1
            instr = step.instruction
            kind = step.kind
            if kind == "exec":
                if instr.op is Op.CALL:
                    call_stack.append(step.pc + 1)
                    continue
                # One store, no save/restore: every exit path below (and
                # the dispatcher on return) overwrites state.pc anyway,
                # and faults should report the faulting instruction.
                state.pc = step.pc
                execute(instr, regs, memory)
                continue
            if kind == "guard_cond":
                taken = compare(instr.op, regs[instr.rs], regs[instr.rt])
                if taken != step.expected_taken:
                    fragment.guard_exits += 1
                    stats.guard_exits += 1
                    stats.fragment_instructions += executed
                    return (
                        instr.target if taken else step.pc + 1
                    ), False
                continue
            if kind == "guard_target":
                target = regs[instr.rs]
                matched = target == step.expected_target
                if not matched:
                    # The recorded target was validated when the trace
                    # was interpreted; only a diverging target needs the
                    # leader check.
                    machine._check_leader(
                        target, "jr" if instr.op is Op.JR else "callr"
                    )
                if instr.op is Op.CALLR:
                    call_stack.append(step.pc + 1)
                if not matched:
                    fragment.guard_exits += 1
                    stats.guard_exits += 1
                    stats.fragment_instructions += executed
                    return target, False
                continue
            if kind == "guard_ret":
                if not call_stack:
                    stats.fragment_instructions += executed
                    return None, False  # return from main: halt
                target = call_stack.pop()
                if target != step.expected_target:
                    fragment.guard_exits += 1
                    stats.guard_exits += 1
                    stats.fragment_instructions += executed
                    return target, False
                continue
            if kind == "halt":
                stats.fragment_instructions += executed
                return None, False
        stats.fragment_instructions += executed
        return fragment.final_target, True


def run_mini_dynamo(
    program: AssembledProgram,
    memory: list[int] | None = None,
    delay: int = 50,
    max_steps: int = 10_000_000,
    config: DynamoConfig = DEFAULT_CONFIG,
    obs: Registry | None = None,
    tier: str | None = None,
    scheme: str = "net",
) -> VMResult:
    """Convenience wrapper: run ``program`` under the miniature Dynamo.

    The execution tier defaults to ``config.tier``; pass ``tier=`` to
    override per call.
    """
    vm = DynamoVM(
        program,
        delay=delay,
        scheme=scheme,
        cache_budget_instructions=config.cache_budget_instructions,
        tier=tier if tier is not None else config.tier,
        obs=obs,
    )
    if memory:
        vm.load_memory(memory)
    return vm.run(max_steps=max_steps)
