"""Fragments and the software code cache.

The object model behind Dynamo's cache: a :class:`Fragment` is an
optimized copy of one hot path; the :class:`FragmentCache` stores
fragments, tracks its occupancy against a budget, links fragments, and
supports the flush operation the phase heuristic (§6.1) relies on.
Used by the event-level simulator; the vectorized Figure 5 model tracks
the same quantities as arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DynamoError


@dataclass
class Fragment:
    """An optimized trace resident in the code cache."""

    path_id: int
    head_uid: int
    num_instructions: int
    created_at: int
    executions: int = 0
    last_executed: int = -1
    #: Path ids this fragment links to directly (no dispatch on exit).
    links: set[int] = field(default_factory=set)


class FragmentCache:
    """The software code cache: bounded, linkable, flushable.

    Two capacity policies are provided:

    * ``"flush"`` (Dynamo's choice) — when a new fragment does not fit,
      drop *everything*.  Brutal, but it keeps fragment linking
      trivially correct (no dangling linked exits) and doubles as the
      phase reaction;
    * ``"fifo"`` — evict oldest-first until the new fragment fits, the
      conventional alternative Dynamo argued against; eviction must
      unlink every fragment pointing at the victim.
    """

    def __init__(self, budget_instructions: int, policy: str = "flush"):
        if budget_instructions < 1:
            raise DynamoError("cache budget must be positive")
        if policy not in ("flush", "fifo"):
            raise DynamoError(f"unknown cache policy {policy!r}")
        self.budget_instructions = budget_instructions
        self.policy = policy
        self._fragments: dict[int, Fragment] = {}
        self.occupancy = 0
        self.flush_count = 0
        self.total_emitted = 0
        self.evictions = 0
        self.unlink_operations = 0

    # ------------------------------------------------------------------
    def lookup(self, path_id: int) -> Fragment | None:
        """The fragment for ``path_id``, if resident."""
        return self._fragments.get(path_id)

    def __contains__(self, path_id: int) -> bool:
        return path_id in self._fragments

    def __len__(self) -> int:
        return len(self._fragments)

    @property
    def is_full(self) -> bool:
        """Whether the next emission would exceed the budget."""
        return self.occupancy >= self.budget_instructions

    # ------------------------------------------------------------------
    def emit(self, fragment: Fragment) -> bool:
        """Install ``fragment``, making room per the capacity policy.

        Returns True when installing triggered a whole-cache flush
        (never under the ``"fifo"`` policy, which evicts piecemeal).
        """
        flushed = False
        if fragment.path_id in self._fragments:
            return flushed
        if (
            self.occupancy + fragment.num_instructions
            > self.budget_instructions
        ):
            if self.policy == "flush":
                self.flush()
                flushed = True
            else:
                self._evict_until_fits(fragment.num_instructions)
        self._fragments[fragment.path_id] = fragment
        self.occupancy += fragment.num_instructions
        self.total_emitted += fragment.num_instructions
        return flushed

    def _evict_until_fits(self, needed: int) -> None:
        """FIFO eviction, unlinking every reference to each victim."""
        while (
            self._fragments
            and self.occupancy + needed > self.budget_instructions
        ):
            victim_id, victim = next(iter(self._fragments.items()))
            del self._fragments[victim_id]
            self.occupancy -= victim.num_instructions
            self.evictions += 1
            for fragment in self._fragments.values():
                if victim_id in fragment.links:
                    fragment.links.discard(victim_id)
                    self.unlink_operations += 1

    def link(self, from_path: int, to_path: int) -> None:
        """Record a direct fragment→fragment link."""
        fragment = self._fragments.get(from_path)
        if fragment is not None:
            fragment.links.add(to_path)

    def flush(self) -> None:
        """Drop every fragment (Dynamo's phase-change reaction)."""
        self._fragments.clear()
        self.occupancy = 0
        self.flush_count += 1

    def fragments(self) -> list[Fragment]:
        """Resident fragments, insertion-ordered."""
        return list(self._fragments.values())
