"""Cost-model simulator of the Dynamo dynamic optimizer (paper §6).

:class:`DynamoSystem` runs a path trace under a prediction scheme and a
cycle cost model; :class:`DynamoRun` reports the speedup over native
execution that Figure 5 plots.  The fragment cache, flush heuristic and
bail-out policy model the behaviours §6/§6.1 describe.
"""

from repro.dynamo.compiler import (
    CompiledCache,
    CompiledFragment,
    compile_fragment,
    state_digest,
)
from repro.dynamo.config import DEFAULT_CONFIG, TIERS, DynamoConfig
from repro.dynamo.costmodel import native_cycles, simulate_costs
from repro.dynamo.flush import PredictionRateMonitor
from repro.dynamo.fragment import Fragment, FragmentCache
from repro.dynamo.optimizer import (
    OptimizedFragment,
    TraceInstruction,
    TraceOptimizer,
    measure_fragment_speedups,
)
from repro.dynamo.stats import CycleBreakdown, DynamoRun
from repro.dynamo.system import SCHEMES, DynamoSystem, measured_fragment_sizes
from repro.dynamo.vm import (
    DynamoVM,
    VMFragment,
    VMResult,
    VMStats,
    run_mini_dynamo,
)

__all__ = [
    "DEFAULT_CONFIG",
    "TIERS",
    "CompiledCache",
    "CompiledFragment",
    "compile_fragment",
    "state_digest",
    "CycleBreakdown",
    "DynamoConfig",
    "DynamoRun",
    "DynamoSystem",
    "Fragment",
    "FragmentCache",
    "PredictionRateMonitor",
    "SCHEMES",
    "OptimizedFragment",
    "TraceInstruction",
    "TraceOptimizer",
    "measure_fragment_speedups",
    "DynamoVM",
    "VMFragment",
    "VMResult",
    "VMStats",
    "measured_fragment_sizes",
    "run_mini_dynamo",
    "native_cycles",
    "simulate_costs",
]
