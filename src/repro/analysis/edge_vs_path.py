"""Edge profiling versus path profiling: the offline "showdown".

Paper §7 invokes Ball, Mataga & Sagiv (POPL'98): "collecting edge
profiles provides sufficient information to compute a large percentage
of the hot portion of the corresponding path profile" — the offline
counterpart of the paper's own less-is-more result.  This module
reproduces that comparison on our traces:

1. build the edge profile implied by a path trace (every block-to-block
   transition weighted by its flow);
2. *estimate* a path profile from edges alone: each observed path's
   frequency is bounded by its minimum edge weight (the classic
   max-flow-style bound), and hot-path candidates are ranked by that
   bound;
3. score the estimate against the true path profile: how much of the
   true hot flow do the edge-derived candidates cover, and how often
   does edge-derived ranking agree with the true ranking.

The interesting outcome mirrors BMS: edge profiles recover most hot
*flow*, but mis-rank paths through blocks with interleaved successors —
exactly the branch-correlation information paths carry and edges lose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.metrics.hotpaths import HotPathSet, hot_path_set
from repro.trace.recorder import PathTrace


def edge_profile_of(trace: PathTrace) -> dict[tuple[int, int], int]:
    """The edge profile a block-level profiler would have collected."""
    counts: dict[tuple[int, int], int] = {}
    freqs = trace.freqs()
    for path_id, path in enumerate(trace.table):
        flow = int(freqs[path_id])
        if flow == 0:
            continue
        blocks = path.blocks
        for src, dst in zip(blocks, blocks[1:]):
            key = (src, dst)
            counts[key] = counts.get(key, 0) + flow
    return counts


def estimate_path_freqs(
    trace: PathTrace, edges: dict[tuple[int, int], int]
) -> np.ndarray:
    """Edge-derived upper bound on each path's frequency.

    A path cannot execute more often than its least-travelled edge;
    single-block paths are bounded by the flow entering their head.
    """
    estimates = np.zeros(trace.num_paths, dtype=np.int64)
    head_inflow: dict[int, int] = {}
    for (src, dst), count in edges.items():
        head_inflow[dst] = head_inflow.get(dst, 0) + count
    for path_id, path in enumerate(trace.table):
        blocks = path.blocks
        if len(blocks) == 1:
            estimates[path_id] = head_inflow.get(blocks[0], 0)
            continue
        bound = min(
            edges.get((src, dst), 0)
            for src, dst in zip(blocks, blocks[1:])
        )
        estimates[path_id] = bound
    return estimates


@dataclass(frozen=True)
class ShowdownResult:
    """Outcome of the edge-vs-path comparison on one trace."""

    benchmark: str
    #: Size of the true 0.1% hot set.
    true_hot: int
    #: Hot paths also in the edge-derived top-|hot| candidates.
    recovered: int
    #: True hot flow covered by the edge-derived candidate set.
    hot_flow_coverage_percent: float
    #: Mean relative overestimation of hot-path frequencies by the
    #: edge bound (0 = exact; > 0 = edges lose correlation).
    mean_overestimate: float

    @property
    def recovery_percent(self) -> float:
        """Share of the true hot set the edge profile identifies."""
        if self.true_hot == 0:
            return 0.0
        return 100.0 * self.recovered / self.true_hot

    def render(self) -> str:
        """One-line report form."""
        return (
            f"{self.benchmark:>10s}: edges recover {self.recovered}/"
            f"{self.true_hot} hot paths "
            f"({self.recovery_percent:.1f}%), "
            f"{self.hot_flow_coverage_percent:.1f}% of hot flow, "
            f"overestimate×{1 + self.mean_overestimate:.2f}"
        )


def edge_vs_path_showdown(
    trace: PathTrace,
    hot: HotPathSet | None = None,
    fraction: float = 0.001,
) -> ShowdownResult:
    """Run the BMS-style comparison on ``trace``."""
    if trace.num_paths == 0:
        raise ReproError("cannot compare profiles of an empty trace")
    if hot is None:
        hot = hot_path_set(trace, fraction)
    freqs = trace.freqs()
    edges = edge_profile_of(trace)
    estimates = estimate_path_freqs(trace, edges)

    true_hot_ids = set(int(p) for p in hot.hot_ids())
    k = len(true_hot_ids)
    candidate_ids = set(
        int(p) for p in np.argsort(-estimates, kind="stable")[:k]
    )
    recovered = len(true_hot_ids & candidate_ids)
    covered_flow = int(freqs[sorted(true_hot_ids & candidate_ids)].sum())

    overestimates = []
    for path_id in true_hot_ids:
        true_freq = int(freqs[path_id])
        if true_freq > 0:
            overestimates.append(
                (int(estimates[path_id]) - true_freq) / true_freq
            )
    mean_over = float(np.mean(overestimates)) if overestimates else 0.0

    return ShowdownResult(
        benchmark=trace.name,
        true_hot=k,
        recovered=recovered,
        hot_flow_coverage_percent=(
            100.0 * covered_flow / hot.hot_flow if hot.hot_flow else 0.0
        ),
        mean_overestimate=mean_over,
    )
