"""Offline profile analyses (paper §3's coverage analogy and §7's
edge-vs-path showdown)."""

from repro.analysis.coverage import (
    CoverageCurve,
    coverage_curve,
    oracle_hit_rate,
)
from repro.analysis.edge_vs_path import (
    ShowdownResult,
    edge_profile_of,
    edge_vs_path_showdown,
    estimate_path_freqs,
)

__all__ = [
    "CoverageCurve",
    "ShowdownResult",
    "coverage_curve",
    "edge_profile_of",
    "edge_vs_path_showdown",
    "estimate_path_freqs",
    "oracle_hit_rate",
]
