"""Offline coverage metrics.

Paper §3: "Hit rate is the online analog to the coverage metric that has
been used in evaluating offline path profiles."  This module provides
the offline side — how much flow the top-N profile entries cover — so
the online/offline analogy can be demonstrated numerically: coverage of
the top-N paths equals the hit rate of an oracle predictor that selects
those N paths with zero delay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.trace.recorder import PathTrace


@dataclass(frozen=True)
class CoverageCurve:
    """Cumulative flow coverage of the rank-ordered path profile."""

    benchmark: str
    #: Per-rank cumulative coverage percentages (rank 1 first).
    cumulative_percent: tuple[float, ...]

    def coverage_at(self, top_n: int) -> float:
        """Coverage (%) of the ``top_n`` hottest paths."""
        if top_n <= 0:
            return 0.0
        index = min(top_n, len(self.cumulative_percent)) - 1
        return self.cumulative_percent[index]

    def paths_for_coverage(self, percent: float) -> int:
        """Smallest N whose top-N coverage reaches ``percent``."""
        for rank, value in enumerate(self.cumulative_percent, start=1):
            if value >= percent:
                return rank
        return len(self.cumulative_percent)


def coverage_curve(trace: PathTrace) -> CoverageCurve:
    """Rank paths by frequency and accumulate their flow share."""
    if trace.flow == 0:
        raise ReproError("cannot compute coverage of an empty trace")
    freqs = np.sort(trace.freqs())[::-1]
    freqs = freqs[freqs > 0]
    cumulative = 100.0 * np.cumsum(freqs) / trace.flow
    return CoverageCurve(
        benchmark=trace.name,
        cumulative_percent=tuple(float(v) for v in cumulative),
    )


def oracle_hit_rate(trace: PathTrace, top_n: int, hot_flow: int) -> float:
    """Hit rate of a zero-delay oracle predicting the true top-N paths.

    With τ = 0 and perfect selection, captured flow is exactly the
    top-N coverage — the identity linking the offline coverage metric
    and the paper's online hit rate.
    """
    if hot_flow <= 0:
        return 0.0
    freqs = np.sort(trace.freqs())[::-1][:top_n]
    return 100.0 * float(freqs.sum()) / hot_flow
