"""Exception hierarchy shared across the ``repro`` package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the subsystem at fault.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class CFGError(ReproError):
    """A control-flow graph is malformed or an operation on it is invalid."""


class CFGValidationError(CFGError):
    """A :class:`repro.cfg.Program` failed structural validation.

    Carries the full list of findings so callers can report every problem at
    once instead of fixing them one by one.
    """

    def __init__(self, findings: list[str]):
        self.findings = list(findings)
        summary = "; ".join(self.findings[:5])
        if len(self.findings) > 5:
            summary += f"; … ({len(self.findings) - 5} more)"
        super().__init__(f"CFG validation failed: {summary}")


class AssemblerError(ReproError):
    """The ISA assembler rejected a source program."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)


class MachineError(ReproError):
    """The ISA interpreter encountered a fault (bad address, div by zero…)."""


class MachineLimitExceeded(MachineError):
    """The ISA interpreter hit its configured step budget.

    Used to bound runaway programs in tests and examples; carries the number
    of executed steps for diagnostics.
    """

    def __init__(self, steps: int):
        self.steps = steps
        super().__init__(f"execution exceeded the step budget of {steps}")


class TraceError(ReproError):
    """A branch-event stream violated the trace invariants."""


class ProfilingError(ReproError):
    """A profiling scheme was misused or fed inconsistent data."""


class PredictionError(ReproError):
    """An online predictor was misused or fed inconsistent data."""


class WorkloadError(ReproError):
    """A workload definition is inconsistent or cannot be generated."""


class DynamoError(ReproError):
    """The Dynamo simulator reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""
