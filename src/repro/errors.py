"""Exception hierarchy shared across the ``repro`` package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the subsystem at fault.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class CFGError(ReproError):
    """A control-flow graph is malformed or an operation on it is invalid."""


class CFGValidationError(CFGError):
    """A :class:`repro.cfg.Program` failed structural validation.

    Carries the full list of findings so callers can report every problem at
    once instead of fixing them one by one.
    """

    def __init__(self, findings: list[str]):
        self.findings = list(findings)
        summary = "; ".join(self.findings[:5])
        if len(self.findings) > 5:
            summary += f"; … ({len(self.findings) - 5} more)"
        super().__init__(f"CFG validation failed: {summary}")


class AssemblerError(ReproError):
    """The ISA assembler rejected a source program."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)


class MachineError(ReproError):
    """The ISA interpreter encountered a fault (bad address, div by zero…)."""


class MachineLimitExceeded(MachineError):
    """The ISA interpreter hit its configured step budget.

    Used to bound runaway programs in tests and examples; carries the number
    of executed steps for diagnostics.
    """

    def __init__(self, steps: int):
        self.steps = steps
        super().__init__(f"execution exceeded the step budget of {steps}")


class TraceError(ReproError):
    """A branch-event stream violated the trace invariants."""


class WireFormatError(TraceError):
    """A serialized :class:`~repro.trace.batch.EventBatch` payload is
    malformed.

    Raised by :mod:`repro.serving.wire` for truncated buffers, bad
    magic, unsupported format versions, and column values outside their
    domain.  A :class:`TraceError` subclass because the wire format is a
    trace representation: callers catching trace-stream problems catch
    wire problems too.
    """


class FrameTooLargeError(WireFormatError):
    """A transport frame's length prefix exceeds the configured cap.

    Raised *before* any allocation is attempted, so a hostile or
    corrupt length prefix can never drive an unbounded read.  Carries
    the declared and permitted sizes for diagnostics.
    """

    def __init__(self, declared: int, limit: int):
        self.declared = declared
        self.limit = limit
        super().__init__(
            f"frame of {declared} bytes exceeds the {limit}-byte limit"
        )


class ProfilingError(ReproError):
    """A profiling scheme was misused or fed inconsistent data."""


class PredictionError(ReproError):
    """An online predictor was misused or fed inconsistent data."""


class WorkloadError(ReproError):
    """A workload definition is inconsistent or cannot be generated."""


class DynamoError(ReproError):
    """The Dynamo simulator reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class SweepExecutionError(ExperimentError):
    """A sweep batch could not be completed within the resilience policy.

    Base class of the executor's failure taxonomy; carries enough
    coordinates (benchmark, batch index, attempts used) to identify the
    failing unit of work in logs and bug reports.
    """

    def __init__(
        self,
        message: str,
        benchmark: str | None = None,
        batch_index: int | None = None,
        attempts: int | None = None,
    ):
        self.benchmark = benchmark
        self.batch_index = batch_index
        self.attempts = attempts
        parts = []
        if benchmark is not None:
            parts.append(f"benchmark={benchmark}")
        if batch_index is not None:
            parts.append(f"batch={batch_index}")
        if attempts is not None:
            parts.append(f"attempts={attempts}")
        suffix = f" [{', '.join(parts)}]" if parts else ""
        super().__init__(message + suffix)


class WorkerCrashError(SweepExecutionError):
    """A sweep worker died (or returned a corrupt result) past the retry
    budget.

    Raised after the executor has exhausted its
    :class:`~repro.resilience.RetryPolicy` for one batch, or when a
    broken process pool cannot be recovered.  The original failure, if
    any, is chained as ``__cause__``.
    """


class BatchTimeoutError(SweepExecutionError):
    """A sweep batch exceeded its per-task timeout past the retry budget.

    ``timeout_seconds`` records the deadline each attempt was given.
    """

    def __init__(
        self,
        message: str,
        benchmark: str | None = None,
        batch_index: int | None = None,
        attempts: int | None = None,
        timeout_seconds: float | None = None,
    ):
        self.timeout_seconds = timeout_seconds
        super().__init__(
            message,
            benchmark=benchmark,
            batch_index=batch_index,
            attempts=attempts,
        )


class ServingError(ReproError):
    """The prediction server was misused or reached an invalid state."""


class BackpressureError(ServingError):
    """A tenant's bounded ingest queue is full; the caller should retry.

    The server rejects rather than buffers: ``retry_after_seconds`` is
    the server's hint for when capacity is likely to be available, and
    ``queued_events``/``capacity`` describe the queue at rejection time
    so clients and load generators can adapt their pacing.
    """

    def __init__(
        self,
        tenant_id: str,
        queued_events: int,
        capacity: int,
        retry_after_seconds: float,
    ):
        self.tenant_id = tenant_id
        self.queued_events = queued_events
        self.capacity = capacity
        self.retry_after_seconds = retry_after_seconds
        super().__init__(
            f"tenant {tenant_id!r} ingest queue full "
            f"({queued_events}/{capacity} events queued); "
            f"retry after {retry_after_seconds:.3f}s"
        )


class SequenceError(ServingError):
    """A tenant batch arrived with an inadmissible sequence number.

    ``expected`` is the next sequence number the server will apply for
    the tenant; ``got`` is what the batch carried.  A *gap* (``got >
    expected``) means the client skipped ahead and must back up; a
    *rewrite* (``got`` already applied but with a different payload
    digest than the original) means the client is trying to change
    history and the stream cannot be trusted.
    """

    def __init__(
        self,
        tenant_id: str,
        expected: int,
        got: int,
        reason: str = "gap",
    ):
        self.tenant_id = tenant_id
        self.expected = expected
        self.got = got
        self.reason = reason
        super().__init__(
            f"tenant {tenant_id!r} batch seq {got} is inadmissible "
            f"({reason}); next expected seq is {expected}"
        )


class DrainingError(ServingError):
    """The server is draining and admits no new work; retry elsewhere.

    Raised (and sent as a typed reply) for every admission attempted
    after :meth:`~repro.serving.server.PredictionServer.drain` begins.
    ``retry_after_seconds`` hints when a replacement server is expected
    to be reachable (a rolling restart's handover window).
    """

    def __init__(self, retry_after_seconds: float):
        self.retry_after_seconds = retry_after_seconds
        super().__init__(
            "server is draining and admits no new work; retry after "
            f"{retry_after_seconds:.3f}s"
        )


class ConnectionLostError(ServingError):
    """The serving client lost its connection past the retry budget.

    Raised by :class:`~repro.serving.transport.ServingClient` after its
    bounded reconnect-and-retry (for idempotent operations) or
    immediately (for non-idempotent ones).  The final transport failure
    is chained as ``__cause__``.
    """

    def __init__(self, message: str, attempts: int = 0):
        self.attempts = attempts
        suffix = f" after {attempts} attempts" if attempts else ""
        super().__init__(message + suffix)


class CheckpointError(ServingError):
    """A durable serving checkpoint could not be read or is invalid.

    Torn WAL tails are *not* errors (they are truncated on open, by
    design); this covers unrecoverable store states: foreign magic, a
    version this build does not speak, or a corrupt snapshot body.
    """


class SweepInterrupted(ExperimentError):
    """A sweep was stopped by SIGINT/SIGTERM before finishing.

    Carries the work that *did* complete: ``partial`` holds the finished
    :class:`~repro.experiments.sweep.SweepPoint` results in canonical
    order, ``completed``/``total`` count cells.  Every completed cell
    was already flushed to the sweep cache (when one was attached), so a
    rerun resumes without replaying them.
    """

    def __init__(
        self,
        partial: list | None = None,
        completed: int = 0,
        total: int = 0,
        signal_name: str = "SIGINT",
    ):
        self.partial = list(partial) if partial is not None else []
        self.completed = completed
        self.total = total
        self.signal_name = signal_name
        super().__init__(
            f"sweep interrupted by {signal_name} after "
            f"{completed}/{total} cells"
        )
