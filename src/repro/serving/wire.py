"""Wire serialization of :class:`~repro.trace.batch.EventBatch`.

The columnar batch is already the in-memory exchange format of the
event pipeline; this module makes it the *network* exchange format of
the prediction server.  A payload is a fixed little-endian header
followed by the four columns back to back::

    offset  size  field
    0       4     magic  b"RHPB"
    4       2     format version (u16)
    6       2     flags, reserved, must be 0 (u16)
    8       4     event count n (u32)
    12      8*n   src column      (i64)
    12+8n   8*n   dst column      (i64)
    12+16n  1*n   kind column     (u8, KIND_CODE values)
    12+17n  1*n   backward column (u8, strictly 0 or 1)

Decoding is zero-copy over the input buffer (numpy views into the
immutable payload bytes); every malformation — truncation, trailing
garbage, foreign magic, a version this build does not speak, or column
values outside their domain — raises
:class:`~repro.errors.WireFormatError` with a message naming the
offending field, never a silent partial batch.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from repro.errors import WireFormatError
from repro.trace.batch import CODE_KIND, EventBatch

#: Leading bytes of every payload ("Repro Hot-Path Batch").
WIRE_MAGIC = b"RHPB"

#: The one format version this build encodes and accepts.
WIRE_VERSION = 1

_HEADER = struct.Struct("<4sHHI")

#: Header size in bytes.
HEADER_BYTES = _HEADER.size

#: Fixed per-event payload cost (8 + 8 + 1 + 1 column bytes).
BYTES_PER_EVENT = 18


def batch_digest(batch: EventBatch) -> int:
    """Content digest of a batch as an unsigned 64-bit integer.

    A pure function of the four event columns in canonical (wire)
    byte order, so the same batch digests identically whether it
    arrived in-process or over the network.  The serving durability
    layer logs this digest per ingested batch: a retried batch must
    re-present the same digest under the same sequence number, which is
    how exactly-once ingest distinguishes a safe duplicate from an
    attempt to rewrite stream history.
    """
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(np.ascontiguousarray(batch.src, dtype="<i8").tobytes())
    hasher.update(np.ascontiguousarray(batch.dst, dtype="<i8").tobytes())
    hasher.update(
        np.ascontiguousarray(batch.kind, dtype=np.uint8).tobytes()
    )
    hasher.update(batch.backward.astype(np.uint8).tobytes())
    return int.from_bytes(hasher.digest(), "little")


def encode_batch(batch: EventBatch) -> bytes:
    """Serialize ``batch`` into one self-describing payload."""
    n = len(batch)
    header = _HEADER.pack(WIRE_MAGIC, WIRE_VERSION, 0, n)
    return b"".join(
        (
            header,
            np.ascontiguousarray(batch.src, dtype="<i8").tobytes(),
            np.ascontiguousarray(batch.dst, dtype="<i8").tobytes(),
            np.ascontiguousarray(batch.kind, dtype=np.uint8).tobytes(),
            batch.backward.astype(np.uint8).tobytes(),
        )
    )


def decode_batch(payload: bytes | bytearray | memoryview) -> EventBatch:
    """Parse one payload back into an :class:`EventBatch`.

    The returned batch's columns are read-only views into ``payload``
    (no copy); callers that need to outlive the buffer should copy.
    """
    view = memoryview(payload)
    if len(view) < HEADER_BYTES:
        raise WireFormatError(
            f"payload of {len(view)} bytes is shorter than the "
            f"{HEADER_BYTES}-byte header"
        )
    magic, version, flags, count = _HEADER.unpack_from(view, 0)
    if magic != WIRE_MAGIC:
        raise WireFormatError(
            f"bad magic {bytes(magic)!r}; expected {WIRE_MAGIC!r}"
        )
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire format version {version}; this build "
            f"speaks version {WIRE_VERSION}"
        )
    if flags != 0:
        raise WireFormatError(f"reserved header flags must be 0, got {flags}")
    expected = HEADER_BYTES + count * BYTES_PER_EVENT
    if len(view) != expected:
        kind = "truncated" if len(view) < expected else "oversized"
        raise WireFormatError(
            f"{kind} payload: header declares {count} events "
            f"({expected} bytes), buffer has {len(view)}"
        )

    offset = HEADER_BYTES
    src = np.frombuffer(view, dtype="<i8", count=count, offset=offset)
    offset += 8 * count
    dst = np.frombuffer(view, dtype="<i8", count=count, offset=offset)
    offset += 8 * count
    kind = np.frombuffer(view, dtype=np.uint8, count=count, offset=offset)
    offset += count
    backward = np.frombuffer(
        view, dtype=np.uint8, count=count, offset=offset
    )

    if count and kind.max() >= len(CODE_KIND):
        raise WireFormatError(
            f"kind column contains code {int(kind.max())}; valid codes "
            f"are 0..{len(CODE_KIND) - 1}"
        )
    if count and backward.max() > 1:
        raise WireFormatError(
            "backward column contains a byte other than 0 or 1"
        )
    return EventBatch(src, dst, kind, backward.view(bool))
