"""Serving chaos harness: prove crash-safety by breaking the server.

The durability layer's contract is strong — *any* interruption of a
durable server, followed by a restore and a client re-send from the
expected sequence number, yields per-tenant predictions byte-identical
to an uninterrupted run.  This module turns that contract into an
executable experiment: a deterministic single-driver replay of a small
tenant corpus, with faults injected at planned schedule steps, whose
final per-tenant fingerprints are compared against a fault-free
baseline.

Fault vocabulary — a :class:`~repro.resilience.FaultPlan` keyed by the
global schedule step, reusing the sweep executor's spec machinery with
serving-specific meanings:

``crash``
    Kill the server before the step (no drain, no final checkpoint —
    exactly a SIGKILL), restore a successor from the state dir, ask it
    where every tenant's stream stands and re-send from there.  The
    re-acked batches' selections are asserted identical to the
    originals.
``corrupt``
    A crash *plus* a flipped byte at the tail of every shard WAL before
    the restore — the torn-tail scenario recovery truncates.
``hang``
    A lost acknowledgement: the step's batch is delivered twice.  Over
    TCP the server drops the first reply on the floor and the client's
    retry policy re-sends; in-process the driver re-ingests directly.
    Either way the second delivery must be acked without effect.
``interrupt``
    A rolling restart: :meth:`~repro.serving.server.PredictionServer.
    drain` (every tenant checkpointed), then restore — the graceful
    twin of ``crash``, with nothing to re-send.

Determinism: one driver thread, a fixed round-robin schedule, seeded
corpus generation and content-addressed fingerprints make every chaos
run exactly reproducible — the same plan always breaks the same bytes.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field

from repro.errors import ServingError
from repro.obs.core import Registry, get_registry
from repro.resilience import FaultPlan, RetryPolicy
from repro.serving.loadgen import TenantStream, build_stream
from repro.serving.server import PredictionServer, ServerConfig
from repro.serving.session import HotPathSelection
from repro.serving.transport import (
    ServingClient,
    ServingTCPServer,
    _report_record,
    _selection_record,
    start_background,
)

#: The fault kinds the serving harness knows how to inject.
SERVING_FAULT_KINDS = ("crash", "corrupt", "hang", "interrupt")


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos experiment."""

    #: Tenants replayed (stream ``i % num_streams`` each).
    num_tenants: int = 6
    #: Distinct generated streams.
    num_streams: int = 2
    #: Events per tenant stream.
    events_per_tenant: int = 1_200
    #: Events per ingest batch.
    batch_events: int = 96
    #: Loop trip count hint for corpus generation.
    trips: int = 15
    #: Corpus seed.
    seed: int = 23
    #: NET prediction delay.
    delay: int = 20
    #: Shards of the server under test.
    num_shards: int = 2
    #: Checkpoint cadence (small, so kills land between checkpoints).
    checkpoint_interval_batches: int = 3
    #: The faults to inject, keyed by global schedule step.
    faults: FaultPlan = field(default_factory=FaultPlan)
    #: Drive the schedule over real TCP (connection-drop faults become
    #: actual dropped sockets) instead of the in-process API.
    tcp: bool = False

    def server_config(self) -> ServerConfig:
        return ServerConfig(
            num_shards=self.num_shards,
            delay=self.delay,
            checkpoint_interval_batches=self.checkpoint_interval_batches,
        )


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one chaos run."""

    tenants: int
    steps: int
    faults_fired: tuple[tuple[str, int], ...]
    restarts: int
    replayed_batches: int
    duplicates_acked: int
    truncated_bytes: int
    #: Tenants whose chaos fingerprint differs from the baseline.
    mismatched: tuple[str, ...]
    #: Per-tenant content fingerprints (chaos run).
    fingerprints: dict[str, str]

    @property
    def equivalent(self) -> bool:
        """Whether every tenant matched the uninterrupted baseline."""
        return not self.mismatched

    def to_dict(self) -> dict:
        return {
            "tenants": self.tenants,
            "steps": self.steps,
            "faults_fired": [list(f) for f in self.faults_fired],
            "restarts": self.restarts,
            "replayed_batches": self.replayed_batches,
            "duplicates_acked": self.duplicates_acked,
            "truncated_bytes": self.truncated_bytes,
            "equivalent": self.equivalent,
            "mismatched": list(self.mismatched),
        }


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def _normalize_selection(selection) -> dict:
    if isinstance(selection, HotPathSelection):
        return _selection_record(selection)
    return {
        "path_id": int(selection["path_id"]),
        "time": int(selection["time"]),
        "head_uid": int(selection["head_uid"]),
        "blocks": [int(b) for b in selection["blocks"]],
        "num_instructions": int(selection["num_instructions"]),
    }


def tenant_fingerprint(
    selections_by_seq: dict[int, list[dict]],
    close_selections: list[dict],
    report: dict,
) -> str:
    """Content hash of everything a tenant observed, in stream order."""
    canonical = json.dumps(
        {
            "selections": [
                selections_by_seq[seq]
                for seq in sorted(selections_by_seq)
            ],
            "close": close_selections,
            "report": report,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=16
    ).hexdigest()


# ----------------------------------------------------------------------
# Drivers: the same schedule over the in-process API or real TCP
# ----------------------------------------------------------------------
class _InProcessDriver:
    def __init__(
        self,
        state_dir: str | None,
        programs: dict[str, "object"],
        config: ServerConfig,
    ):
        self.state_dir = state_dir
        self.programs = programs
        self.config = config
        self.server = PredictionServer(config, state_dir=state_dir)

    def open(self, tenant_id: str, stream: TenantStream) -> None:
        self.server.open_tenant(
            tenant_id, stream.program, program_name=stream.name
        )

    def ingest(
        self, tenant_id: str, stream: TenantStream, seq: int
    ) -> tuple[list[dict], bool]:
        result = self.server.ingest(
            tenant_id, stream.batches[seq], seq=seq
        )
        return (
            [_normalize_selection(s) for s in result.selections],
            result.duplicate,
        )

    def expected_seq(self, tenant_id: str) -> int:
        return self.server.expected_seq(tenant_id)

    def close_tenant(self, tenant_id: str) -> tuple[list[dict], dict]:
        report = self.server.close_tenant(tenant_id)
        return (
            [_normalize_selection(s) for s in report.selections],
            _report_record(report),
        )

    def kill(self) -> None:
        """Abandon the instance as a crash would: no drain, no flush."""
        self.server.close()

    def drain(self) -> None:
        self.server.drain(timeout=30.0)
        self.server.close()

    def restart(self) -> None:
        self.server = PredictionServer.restore(
            self.state_dir, self.programs, self.config
        )

    def drop_next_ack(self) -> bool:
        return False  # in-process: the caller re-ingests directly

    def shutdown(self) -> None:
        self.server.close()


class _TCPDriver(_InProcessDriver):
    def __init__(self, state_dir, programs, config):
        super().__init__(state_dir, programs, config)
        self._retry = RetryPolicy(
            max_retries=4, backoff_base=0.002, backoff_cap=0.05
        )
        self._serve()

    def _serve(self) -> None:
        self.tcp = ServingTCPServer(
            ("127.0.0.1", 0), self.server, self.programs_by_name()
        )
        start_background(self.tcp)
        self.client = ServingClient(
            "127.0.0.1", self.tcp.port, retry_policy=self._retry
        )

    def programs_by_name(self) -> dict:
        return dict(self.programs)

    def open(self, tenant_id: str, stream: TenantStream) -> None:
        self.client.open(tenant_id, stream.name)

    def ingest(self, tenant_id, stream, seq):
        reply = self.client.ingest(
            tenant_id, stream.payloads[seq], seq=seq
        )
        return (
            [_normalize_selection(s) for s in reply["selections"]],
            bool(reply["duplicate"]),
        )

    def expected_seq(self, tenant_id: str) -> int:
        return self.client.expected_seq(tenant_id)

    def close_tenant(self, tenant_id):
        reply = self.client.close_tenant(tenant_id)
        return (
            [_normalize_selection(s) for s in reply["selections"]],
            dict(reply["report"]),
        )

    def _stop_tcp(self) -> None:
        self.client.close()
        self.tcp.shutdown()
        self.tcp.server_close()

    def kill(self) -> None:
        self._stop_tcp()
        self.server.close()

    def drain(self) -> None:
        self._stop_tcp()
        self.server.drain(timeout=30.0)
        self.server.close()

    def restart(self) -> None:
        super().restart()
        self._serve()

    def drop_next_ack(self) -> bool:
        self.tcp.chaos_drop_next_reply = True
        return True

    def shutdown(self) -> None:
        self._stop_tcp()
        self.server.close()


def _corrupt_wal_tails(state_dir: str) -> None:
    """Flip the last byte of every shard WAL (a torn machine-crash tail)."""
    for wal in pathlib.Path(state_dir).glob("shard-*/wal.log"):
        raw = bytearray(wal.read_bytes())
        if len(raw) <= 8:  # header only: nothing to tear
            continue
        raw[-1] ^= 0xFF
        wal.write_bytes(bytes(raw))


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------
def _build_schedule(
    config: ChaosConfig,
) -> tuple[list[TenantStream], dict[str, TenantStream], list[tuple[str, int]]]:
    corpus = [
        build_stream(
            seed=config.seed + index,
            events=config.events_per_tenant,
            batch_events=config.batch_events,
            trips=config.trips,
        )
        for index in range(config.num_streams)
    ]
    tenants = {
        f"chaos-{index}": corpus[index % len(corpus)]
        for index in range(config.num_tenants)
    }
    longest = max(len(stream.batches) for stream in tenants.values())
    schedule = [
        (tenant_id, round_index)
        for round_index in range(longest)
        for tenant_id, stream in tenants.items()
        if round_index < len(stream.batches)
    ]
    return corpus, tenants, schedule


def _run_baseline(
    config: ChaosConfig,
    tenants: dict[str, TenantStream],
    schedule: list[tuple[str, int]],
) -> dict[str, str]:
    """The uninterrupted oracle: same schedule, plain in-memory server."""
    server = PredictionServer(config.server_config())
    for tenant_id, stream in tenants.items():
        server.open_tenant(tenant_id, stream.program)
    selections: dict[str, dict[int, list[dict]]] = {
        tenant_id: {} for tenant_id in tenants
    }
    for tenant_id, seq in schedule:
        result = server.ingest(
            tenant_id, tenants[tenant_id].batches[seq], seq=seq
        )
        selections[tenant_id][seq] = [
            _normalize_selection(s) for s in result.selections
        ]
    fingerprints = {}
    for tenant_id in tenants:
        report = server.close_tenant(tenant_id)
        fingerprints[tenant_id] = tenant_fingerprint(
            selections[tenant_id],
            [_normalize_selection(s) for s in report.selections],
            _report_record(report),
        )
    return fingerprints


def run_chaos(
    config: ChaosConfig,
    state_dir: str,
    obs: Registry | None = None,
) -> ChaosReport:
    """Run one chaos experiment and compare against the baseline.

    ``state_dir`` must be empty (the durable server under test owns
    it).  Returns a :class:`ChaosReport`; ``report.equivalent`` is the
    theorem — every tenant's recovered predictions byte-identical to
    the uninterrupted run's.
    """
    registry = get_registry(obs)
    corpus, tenants, schedule = _build_schedule(config)
    with registry.span("chaos.baseline"):
        baseline = _run_baseline(config, tenants, schedule)

    programs = {stream.name: stream.program for stream in corpus}
    driver_cls = _TCPDriver if config.tcp else _InProcessDriver
    driver = driver_cls(state_dir, programs, config.server_config())

    selections: dict[str, dict[int, list[dict]]] = {
        tenant_id: {} for tenant_id in tenants
    }
    cursors = {tenant_id: 0 for tenant_id in tenants}
    faults_fired: list[tuple[str, int]] = []
    restarts = 0
    replayed = 0
    duplicates = 0
    torn_bytes = 0

    def record(tenant_id: str, seq: int, sels: list[dict]) -> None:
        nonlocal replayed
        previous = selections[tenant_id].get(seq)
        if previous is not None:
            replayed += 1
            if previous != sels:
                raise ServingError(
                    f"replayed batch {seq} of {tenant_id!r} produced "
                    "different selections than the original ack"
                )
        selections[tenant_id][seq] = sels

    def recover() -> None:
        """Restore, then re-send everything past each tenant's durable
        point, asserting re-acked selections match the originals."""
        nonlocal restarts, torn_bytes
        driver.restart()
        restarts += 1
        # Each instance counts only the truncation its own open did.
        torn_bytes += int(
            driver.server.stats().get("truncated_bytes", 0)
        )
        for tenant_id in tenants:
            if cursors[tenant_id] == 0:
                continue
            start = driver.expected_seq(tenant_id)
            for seq in range(start, cursors[tenant_id]):
                sels, duplicate = driver.ingest(
                    tenant_id, tenants[tenant_id], seq
                )
                if duplicate:
                    continue
                record(tenant_id, seq, sels)

    for tenant_id, stream in tenants.items():
        driver.open(tenant_id, stream)

    with registry.span("chaos.replay"):
        for step, (tenant_id, seq) in enumerate(schedule):
            for spec in config.faults.specs:
                if not spec.fires(step, 0):
                    continue
                if spec.kind == "crash":
                    driver.kill()
                    recover()
                elif spec.kind == "corrupt":
                    driver.kill()
                    _corrupt_wal_tails(state_dir)
                    recover()
                elif spec.kind == "interrupt":
                    driver.drain()
                    recover()
                elif spec.kind == "hang":
                    pass  # handled below, around the step's ingest
                else:
                    raise ServingError(
                        f"fault kind {spec.kind!r} has no serving "
                        "meaning; known: "
                        + ", ".join(SERVING_FAULT_KINDS)
                    )
                faults_fired.append((spec.kind, step))

            lost_ack = any(
                spec.kind == "hang" and spec.fires(step, 0)
                for spec in config.faults.specs
            )
            sels, _ = driver.ingest(tenant_id, tenants[tenant_id], seq)
            record(tenant_id, seq, sels)
            if lost_ack:
                # Deliver the batch a second time.  Over TCP the
                # server also eats the next reply, so the client's
                # retry policy reconnects and re-sends — two dropped
                # duplicates server-side; in-process it is one direct
                # re-ingest.  Either way: acked without effect.
                driver.drop_next_ack()
                before = int(driver.server.stats()["dropped"])
                again, duplicate = driver.ingest(
                    tenant_id, tenants[tenant_id], seq
                )
                if not duplicate or again:
                    raise ServingError(
                        "duplicate delivery was not acked without "
                        "effect"
                    )
                deduped = int(driver.server.stats()["dropped"]) - before
                if deduped < 1:
                    raise ServingError(
                        "lost-ack retry was not deduplicated"
                    )
                duplicates += 1
            cursors[tenant_id] = seq + 1

        fingerprints = {}
        mismatched = []
        for tenant_id in tenants:
            close_sels, report = driver.close_tenant(tenant_id)
            fingerprints[tenant_id] = tenant_fingerprint(
                selections[tenant_id], close_sels, report
            )
            if fingerprints[tenant_id] != baseline[tenant_id]:
                mismatched.append(tenant_id)
        driver.shutdown()

    chaos_report = ChaosReport(
        tenants=len(tenants),
        steps=len(schedule),
        faults_fired=tuple(faults_fired),
        restarts=restarts,
        replayed_batches=replayed,
        duplicates_acked=duplicates,
        truncated_bytes=torn_bytes,
        mismatched=tuple(sorted(mismatched)),
        fingerprints=fingerprints,
    )
    if registry.enabled:
        chaos = registry.child("chaos")
        chaos.counter("steps").inc(chaos_report.steps)
        chaos.counter("restarts").inc(chaos_report.restarts)
        chaos.counter("replayed_batches").inc(
            chaos_report.replayed_batches
        )
        chaos.counter("duplicates_acked").inc(
            chaos_report.duplicates_acked
        )
        chaos.gauge("equivalent").set(
            1.0 if chaos_report.equivalent else 0.0
        )
    return chaos_report


def schedule_steps(config: ChaosConfig) -> int:
    """Global schedule length for ``config``, for sizing fault plans."""
    return len(_build_schedule(config)[2])


def default_plan(steps: int) -> FaultPlan:
    """A representative plan scaled to the schedule length: a kill at
    ~25%, a torn tail at ~50%, a lost ack at ~65% and a rolling restart
    at ~80% of the run."""
    from repro.resilience import FaultSpec

    points = {
        "crash": max(1, steps // 4),
        "corrupt": max(2, steps // 2),
        "hang": max(3, (steps * 13) // 20),
        "interrupt": max(4, (steps * 4) // 5),
    }
    return FaultPlan(
        tuple(
            FaultSpec(kind=kind, batch=step)
            for kind, step in sorted(points.items())
        )
    )


def render_chaos_report(report: ChaosReport) -> str:
    """Human-readable summary of one chaos run."""
    fired = (
        ", ".join(f"{kind}@{step}" for kind, step in report.faults_fired)
        or "(none)"
    )
    lines = [
        f"tenants:            {report.tenants}",
        f"schedule steps:     {report.steps}",
        f"faults fired:       {fired}",
        f"server restarts:    {report.restarts}",
        f"batches replayed:   {report.replayed_batches}",
        f"duplicates acked:   {report.duplicates_acked}",
        f"WAL bytes torn:     {report.truncated_bytes}",
        "equivalence:        "
        + (
            "byte-identical to the uninterrupted run"
            if report.equivalent
            else "MISMATCH: " + ", ".join(report.mismatched)
        ),
    ]
    return "\n".join(lines)
