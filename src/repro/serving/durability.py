"""Durable checkpoint/WAL store for the prediction server.

A server restart must not lose tenant streams: this module persists,
per shard, (1) **snapshots** — the complete
:meth:`~repro.serving.session.TenantSession.snapshot` state of a tenant
at a batch boundary — and (2) a **write-ahead digest log** recording the
``(tenant, seq, digest)`` of every batch applied since, plus tenant
open/close lifecycle records.  Together they let
:meth:`~repro.serving.server.PredictionServer.restore` rebuild every
tenant at its last snapshot and verify that the batches a reconnecting
client re-sends are byte-identical to the ones originally applied —
the exactly-once contract.

Crash-safety mechanics, in the same spirit as the sweep cache:

* snapshots are written to a temp file, fsynced, and published with
  ``os.replace`` — a reader sees the old snapshot or the new one,
  never a torn one;
* WAL records are CRC-framed (``u32 length + u32 crc32 + payload``);
  on open the log is scanned and **truncated at the first torn or
  corrupt record** — a crash mid-append costs at most the record being
  written, which the client will simply re-send;
* the WAL is rotated (rewritten with only live records) once it grows
  past a threshold, so long-lived servers do not accrete unbounded
  history.

Durability level: appends are flushed to the OS on every record (a
*process* crash loses nothing) and fsynced at snapshot, drain and
rotation points (bounding what a *machine* crash can lose to the
window since the last snapshot — exactly the torn-tail scenario the
recovery path and chaos harness exercise).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import CheckpointError

#: Leading bytes of a WAL file ("Repro Hot-path WAL").
WAL_MAGIC = b"RHWL"

#: Leading bytes of a snapshot file ("Repro Hot-path ChecKpoint").
CKPT_MAGIC = b"RHCK"

#: The one store layout version this build reads and writes.
STORE_VERSION = 1

_FILE_HEADER = struct.Struct("<4sI")
_RECORD = struct.Struct("<II")


def _crc(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


def checkpoint_name(tenant_id: str) -> str:
    """Filesystem-safe snapshot file name for one tenant.

    Tenant ids are arbitrary UTF-8; the file name is a content hash so
    ids with path separators (or ids differing only in case on
    case-folding filesystems) can never collide or escape the shard
    directory.  The id itself travels inside the snapshot payload.
    """
    digest = hashlib.sha1(tenant_id.encode("utf-8")).hexdigest()
    return f"t-{digest[:20]}.ckpt"


@dataclass
class TenantRecovery:
    """Everything the recovery scan learned about one tenant.

    ``snapshot`` is the session state to restore (``None`` when the
    tenant was opened but never checkpointed — it restarts from the
    program entry); ``snapshot_seq`` is the last batch folded into it
    (``-1`` for none).  ``durable_seq`` is the highest batch seq the WAL
    saw, and ``digests`` maps every logged seq to its payload digest so
    re-sent batches can be verified byte-identical before re-applying.
    """

    tenant_id: str
    program_name: str | None = None
    snapshot: dict | None = None
    snapshot_seq: int = -1
    durable_seq: int = -1
    digests: dict[int, int] = field(default_factory=dict)


class ShardStore:
    """Append-only WAL plus atomic snapshots for one shard's tenants."""

    def __init__(self, directory: pathlib.Path):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_path = self.directory / "wal.log"
        #: Records dropped by torn-tail truncation on open.
        self.truncated_records = 0
        #: Bytes dropped by torn-tail truncation on open.
        self.truncated_bytes = 0
        #: Live record count (survivors on open + appends since).
        self.record_count = 0
        self._records = self._recover_wal()
        self._handle = open(self.wal_path, "ab")

    # ------------------------------------------------------------------
    # WAL
    # ------------------------------------------------------------------
    def _recover_wal(self) -> list[dict]:
        """Read every intact record; truncate the file after the last.

        A torn tail — a partial frame, a CRC mismatch, or an unparsable
        payload — marks the end of the durable prefix: everything from
        there on is discarded (counted in :attr:`truncated_records` /
        :attr:`truncated_bytes`), exactly the semantics of a crash
        mid-append.
        """
        if not self.wal_path.exists():
            with open(self.wal_path, "wb") as handle:
                handle.write(_FILE_HEADER.pack(WAL_MAGIC, STORE_VERSION))
            return []
        data = self.wal_path.read_bytes()
        if len(data) < _FILE_HEADER.size:
            # Torn mid-header: start the log over.
            self.truncated_bytes += len(data)
            with open(self.wal_path, "wb") as handle:
                handle.write(_FILE_HEADER.pack(WAL_MAGIC, STORE_VERSION))
            return []
        magic, version = _FILE_HEADER.unpack_from(data, 0)
        if magic != WAL_MAGIC:
            raise CheckpointError(
                f"{self.wal_path} is not a serving WAL "
                f"(magic {magic!r})"
            )
        if version != STORE_VERSION:
            raise CheckpointError(
                f"{self.wal_path} has store version {version}; this "
                f"build speaks version {STORE_VERSION}"
            )
        records: list[dict] = []
        offset = _FILE_HEADER.size
        good_end = offset
        while offset + _RECORD.size <= len(data):
            length, crc = _RECORD.unpack_from(data, offset)
            begin = offset + _RECORD.size
            end = begin + length
            if end > len(data):
                break  # torn mid-payload
            payload = data[begin:end]
            if _crc(payload) != crc:
                break  # corrupt frame
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break  # CRC-valid garbage cannot be trusted either
            records.append(record)
            offset = end
            good_end = end
        if good_end < len(data):
            self.truncated_records += 1
            self.truncated_bytes += len(data) - good_end
            with open(self.wal_path, "r+b") as handle:
                handle.truncate(good_end)
        self.record_count = len(records)
        return records

    def records(self) -> list[dict]:
        """The intact records recovered when the store was opened."""
        return list(self._records)

    def append(self, record: dict, sync: bool = False) -> None:
        """Append one CRC-framed record, flushed to the OS."""
        payload = json.dumps(
            record, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        self._handle.write(_RECORD.pack(len(payload), _crc(payload)))
        self._handle.write(payload)
        self._handle.flush()
        if sync:
            os.fsync(self._handle.fileno())
        self.record_count += 1

    def sync(self) -> None:
        """fsync the WAL (snapshot/drain barrier)."""
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def rotate(self, live_records: list[dict]) -> None:
        """Atomically rewrite the WAL keeping only ``live_records``."""
        tmp = self.wal_path.with_suffix(".log.tmp")
        with open(tmp, "wb") as handle:
            handle.write(_FILE_HEADER.pack(WAL_MAGIC, STORE_VERSION))
            for record in live_records:
                payload = json.dumps(
                    record, separators=(",", ":"), sort_keys=True
                ).encode("utf-8")
                handle.write(
                    _RECORD.pack(len(payload), _crc(payload))
                )
                handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(tmp, self.wal_path)
        self._handle = open(self.wal_path, "ab")
        self.record_count = len(live_records)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def write_snapshot(self, tenant_id: str, payload: dict) -> None:
        """Atomically publish ``tenant_id``'s snapshot (fsync + rename)."""
        target = self.directory / checkpoint_name(tenant_id)
        body = json.dumps(
            payload, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        tmp = target.with_suffix(".ckpt.tmp")
        with open(tmp, "wb") as handle:
            handle.write(_FILE_HEADER.pack(CKPT_MAGIC, STORE_VERSION))
            handle.write(_RECORD.pack(len(body), _crc(body)))
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        # The WAL records referenced by the snapshot must not outlive a
        # machine crash that the snapshot survives.
        self.sync()

    def load_snapshot(self, path: pathlib.Path) -> dict:
        """Read one snapshot file, validating magic, version and CRC."""
        data = path.read_bytes()
        minimum = _FILE_HEADER.size + _RECORD.size
        if len(data) < minimum:
            raise CheckpointError(
                f"{path} is {len(data)} bytes, shorter than the "
                f"{minimum}-byte snapshot envelope"
            )
        magic, version = _FILE_HEADER.unpack_from(data, 0)
        if magic != CKPT_MAGIC:
            raise CheckpointError(
                f"{path} is not a serving snapshot (magic {magic!r})"
            )
        if version != STORE_VERSION:
            raise CheckpointError(
                f"{path} has store version {version}; this build "
                f"speaks version {STORE_VERSION}"
            )
        length, crc = _RECORD.unpack_from(data, _FILE_HEADER.size)
        body = data[_FILE_HEADER.size + _RECORD.size :]
        if len(body) != length or _crc(body) != crc:
            raise CheckpointError(f"{path} snapshot body is corrupt")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"{path} snapshot body is not valid JSON"
            ) from error

    def load_snapshots(self) -> dict[str, dict]:
        """All tenant snapshots in the shard, keyed by tenant id."""
        snapshots: dict[str, dict] = {}
        for path in sorted(self.directory.glob("t-*.ckpt")):
            payload = self.load_snapshot(path)
            snapshots[payload["tenant_id"]] = payload
        return snapshots

    def delete_snapshot(self, tenant_id: str) -> None:
        """Remove ``tenant_id``'s snapshot file if present."""
        target = self.directory / checkpoint_name(tenant_id)
        try:
            target.unlink()
        except FileNotFoundError:
            pass

    def close(self) -> None:
        self._handle.close()


class DurabilityStore:
    """The server-wide store: one :class:`ShardStore` per shard.

    The state directory carries a ``meta.json`` pinning the layout
    version and shard count — tenants are hashed onto shards, so a
    restore with a different shard count would look for state in the
    wrong place; that mismatch is an error, not silent data loss.
    """

    def __init__(self, state_dir: str | pathlib.Path, num_shards: int):
        self.state_dir = pathlib.Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.num_shards = num_shards
        meta_path = self.state_dir / "meta.json"
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except json.JSONDecodeError as error:
                raise CheckpointError(
                    f"{meta_path} is not valid JSON"
                ) from error
            if meta.get("version") != STORE_VERSION:
                raise CheckpointError(
                    f"{meta_path} has store version "
                    f"{meta.get('version')}; this build speaks "
                    f"version {STORE_VERSION}"
                )
            if meta.get("num_shards") != num_shards:
                raise CheckpointError(
                    f"state dir was written with "
                    f"{meta.get('num_shards')} shards; this server "
                    f"runs {num_shards} — shard routing would not "
                    "find existing tenants"
                )
        else:
            tmp = meta_path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(
                    {"version": STORE_VERSION, "num_shards": num_shards}
                )
            )
            os.replace(tmp, meta_path)
        self.shards = [
            ShardStore(self.state_dir / f"shard-{index:02d}")
            for index in range(num_shards)
        ]

    # ------------------------------------------------------------------
    def recover(self) -> list[dict[str, TenantRecovery]]:
        """Scan every shard into per-tenant recovery state.

        Applies the lifecycle records in order: ``open`` registers a
        tenant, ``batch`` advances its durable seq and digest map, and
        ``close`` retires it (closed tenants are dropped and any stale
        snapshot file — a crash between the close record and the
        snapshot unlink — is healed here).
        """
        recovered: list[dict[str, TenantRecovery]] = []
        for shard in self.shards:
            tenants: dict[str, TenantRecovery] = {}
            closed: set[str] = set()
            for payload in shard.load_snapshots().values():
                tenant = TenantRecovery(
                    tenant_id=payload["tenant_id"],
                    program_name=payload.get("program_name"),
                    snapshot=payload["session"],
                    snapshot_seq=int(payload["seq"]),
                    durable_seq=int(payload["seq"]),
                )
                tenants[tenant.tenant_id] = tenant
            for record in shard.records():
                kind = record.get("k")
                tid = record.get("t")
                if kind == "open":
                    entry = tenants.get(tid)
                    if entry is None:
                        entry = TenantRecovery(tenant_id=tid)
                        tenants[tid] = entry
                    if entry.program_name is None:
                        entry.program_name = record.get("p")
                    closed.discard(tid)
                elif kind == "batch":
                    entry = tenants.get(tid)
                    if entry is None:
                        entry = TenantRecovery(tenant_id=tid)
                        tenants[tid] = entry
                    seq = int(record["s"])
                    entry.digests[seq] = int(record["d"])
                    if seq > entry.durable_seq:
                        entry.durable_seq = seq
                elif kind == "close":
                    tenants.pop(tid, None)
                    closed.add(tid)
            for tid in closed:
                shard.delete_snapshot(tid)
            recovered.append(tenants)
        return recovered

    def live_records(
        self, shard_index: int, tenants: dict[str, "object"]
    ) -> list[dict]:
        """The records a rotation of one shard's WAL must keep.

        ``tenants`` maps tenant id to an object exposing
        ``program_name``, ``last_snapshot_seq`` and ``digests`` (the
        server's live tenant records): every open tenant keeps its
        ``open`` record and the batch records newer than its snapshot.
        """
        records: list[dict] = []
        for tid, tenant in tenants.items():
            name = getattr(tenant, "program_name", None)
            if name is not None:
                records.append({"k": "open", "t": tid, "p": name})
            snapshot_seq = getattr(tenant, "last_snapshot_seq", -1)
            for seq in sorted(getattr(tenant, "digests", {})):
                if seq > snapshot_seq:
                    records.append(
                        {
                            "k": "batch",
                            "t": tid,
                            "s": seq,
                            "d": tenant.digests[seq],
                        }
                    )
        return records

    def stats(self) -> dict:
        """Aggregate store counters (torn-tail truncation, WAL size)."""
        return {
            "wal_records": sum(s.record_count for s in self.shards),
            "truncated_records": sum(
                s.truncated_records for s in self.shards
            ),
            "truncated_bytes": sum(
                s.truncated_bytes for s in self.shards
            ),
        }

    def close(self) -> None:
        for shard in self.shards:
            shard.close()
