"""TCP transport for the prediction server.

A deliberately thin request/reply protocol so the in-process
:class:`~repro.serving.server.PredictionServer` can run as a real
long-lived network service (``repro serve``).  Every message is one
length-prefixed frame::

    u32  frame length (little endian, body bytes)
    u8   opcode          (1=open, 2=ingest, 3=close, 4=seq)
    u16  tenant id length
    ...  tenant id (utf-8)
    ...  operand — open: program name (utf-8, resolved against the
         server's program registry); ingest: a u64 sequence number
         (``SEQ_AUTO`` for server-assigned) followed by a wire-encoded
         EventBatch (see repro.serving.wire); close and seq: empty

Replies are a length-prefixed UTF-8 JSON object whose ``status`` field
is the reply's type: ``"ok"`` with operation results,
``"backpressure"`` / ``"draining"`` for admission rejections (both
carry ``retry_after``), ``"sequence"`` for an inadmissible sequence
number (carries ``expected``/``got``/``reason``), ``"frame"`` when a
request frame exceeded the server's size cap, and ``"error"`` for every
other failure.  Clients never see a hung connection because of a full
queue — every rejection is an immediate, explicit reply, and
:class:`ServingClient` raises each one as its typed exception.

Exactly-once over TCP: a client that tags batches with explicit
sequence numbers may retry any of them blindly — across reconnects and
server restarts — until acknowledged; the server acks already-applied
numbers without effect.  :class:`ServingClient` automates the retry
with a bounded :class:`~repro.resilience.RetryPolicy` for idempotent
operations (open, explicit-seq ingest, seq query) and raises
:class:`~repro.errors.ConnectionLostError` once the budget is spent or
the operation is not safe to repeat.

Programs do not travel over the wire: tenants name a program from the
registry the server was started with (e.g. the generated corpus), which
keeps the transport free of code serialization.
"""

from __future__ import annotations

import json
import socket
import socketserver
import struct
import threading
import time

from repro.cfg.program import Program
from repro.errors import (
    BackpressureError,
    ConnectionLostError,
    DrainingError,
    FrameTooLargeError,
    ReproError,
    SequenceError,
    ServingError,
    WireFormatError,
)
from repro.resilience import RetryPolicy, interrupt_guard
from repro.serving.server import PredictionServer, TenantReport
from repro.serving.session import HotPathSelection
from repro.serving.wire import encode_batch
from repro.trace.batch import EventBatch

OP_OPEN = 1
OP_INGEST = 2
OP_CLOSE = 3
OP_SEQ = 4

_LENGTH = struct.Struct("<I")
_PREFIX = struct.Struct("<BH")
_SEQ = struct.Struct("<Q")

#: Ingest sequence sentinel: "server assigns the next number".  Such a
#: request is *not* idempotent — a retry would apply the batch twice.
SEQ_AUTO = 2**64 - 1

#: Default upper bound on one frame, rejecting absurd length prefixes
#: before allocation (64 MiB is far beyond any sane batch).
MAX_FRAME_BYTES = 64 << 20


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_request(op: int, tenant_id: str, operand: bytes = b"") -> bytes:
    """One request frame, length prefix included."""
    tenant = tenant_id.encode("utf-8")
    body = _PREFIX.pack(op, len(tenant)) + tenant + operand
    return _LENGTH.pack(len(body)) + body


def encode_ingest(
    tenant_id: str, payload: bytes, seq: int | None = None
) -> bytes:
    """An ingest frame carrying ``seq`` (``None`` → :data:`SEQ_AUTO`)."""
    wire_seq = SEQ_AUTO if seq is None else seq
    return encode_request(
        OP_INGEST, tenant_id, _SEQ.pack(wire_seq) + payload
    )


def decode_request(body: bytes) -> tuple[int, str, bytes]:
    """Split a request body into (opcode, tenant id, operand)."""
    if len(body) < _PREFIX.size:
        raise WireFormatError(
            f"request body of {len(body)} bytes is shorter than the "
            f"{_PREFIX.size}-byte prefix"
        )
    op, tenant_len = _PREFIX.unpack_from(body, 0)
    end = _PREFIX.size + tenant_len
    if len(body) < end:
        raise WireFormatError("request truncated inside the tenant id")
    tenant_id = body[_PREFIX.size : end].decode("utf-8")
    return op, tenant_id, body[end:]


def _read_exactly(stream, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on a clean EOF at a frame
    boundary, error on EOF mid-frame."""
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise WireFormatError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    stream, max_frame_bytes: int = MAX_FRAME_BYTES
) -> bytes | None:
    """Read one length-prefixed frame body (None on clean EOF).

    A length prefix beyond ``max_frame_bytes`` raises
    :class:`~repro.errors.FrameTooLargeError` *before any allocation or
    body read* — the declared size is never trusted with memory.
    """
    prefix = _read_exactly(stream, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > max_frame_bytes:
        raise FrameTooLargeError(length, max_frame_bytes)
    body = _read_exactly(stream, length)
    if body is None:
        raise WireFormatError("connection closed mid-frame")
    return body


def write_frame(stream, body: bytes) -> None:
    stream.write(_LENGTH.pack(len(body)) + body)
    stream.flush()


def _selection_record(selection: HotPathSelection) -> dict:
    return {
        "path_id": selection.path_id,
        "time": selection.time,
        "head_uid": selection.head_uid,
        "blocks": list(selection.blocks),
        "num_instructions": selection.num_instructions,
    }


def _report_record(report: TenantReport) -> dict:
    return {
        "events_ingested": report.events_ingested,
        "batches_ingested": report.batches_ingested,
        "flow": report.flow,
        "num_paths": report.num_paths,
        "num_predictions": report.outcome.num_predictions,
        "counter_space": report.counter_space,
        "state_bytes": report.state_bytes,
        "evictions": report.evictions,
    }


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class ServingTCPServer(socketserver.ThreadingTCPServer):
    """One thread per connection in front of a :class:`PredictionServer`.

    ``programs`` is the registry tenants may open against (name →
    :class:`Program`).  ``max_frame_bytes`` caps how large a length
    prefix the server will honor.

    The two ``chaos_*`` knobs are deterministic fault injection for the
    serving chaos harness (production leaves them ``None``): counting
    every frame read across all connections, ``chaos_drop_every=N``
    abruptly closes the connection instead of handling every Nth frame
    (the request is lost before dispatch), and
    ``chaos_drop_reply_every=N`` closes it after dispatch but before
    the reply (the work happened, the ack is lost — the retried request
    must be deduplicated).  ``chaos_drop_next_reply`` drops exactly one
    reply and self-clears, for plan-keyed injection.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        server: PredictionServer,
        programs: dict[str, Program],
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.prediction_server = server
        self.programs = dict(programs)
        self.max_frame_bytes = max_frame_bytes
        self.chaos_drop_every: int | None = None
        self.chaos_drop_reply_every: int | None = None
        self.chaos_drop_next_reply = False
        self._chaos_lock = threading.Lock()
        self._frames_read = 0
        self._replies_ready = 0
        super().__init__(address, _RequestHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    def _chaos_drop_request(self) -> bool:
        if self.chaos_drop_every is None:
            return False
        with self._chaos_lock:
            self._frames_read += 1
            return self._frames_read % self.chaos_drop_every == 0

    def _chaos_drop_reply(self) -> bool:
        with self._chaos_lock:
            if self.chaos_drop_next_reply:
                self.chaos_drop_next_reply = False
                return True
            if self.chaos_drop_reply_every is None:
                return False
            self._replies_ready += 1
            return self._replies_ready % self.chaos_drop_reply_every == 0


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: ServingTCPServer = self.server  # type: ignore[assignment]
        prediction = server.prediction_server
        while True:
            try:
                body = read_frame(self.rfile, server.max_frame_bytes)
            except FrameTooLargeError as oversized:
                # The body was never read, so the stream cannot be
                # resynchronized: reply with the typed rejection, then
                # drop the connection.
                self._reply(
                    {
                        "status": "frame",
                        "error": str(oversized),
                        "declared": oversized.declared,
                        "limit": oversized.limit,
                    }
                )
                return
            except WireFormatError:
                return  # peer vanished or spoke garbage framing
            if body is None:
                return
            if server._chaos_drop_request():
                return  # injected fault: request lost before dispatch
            try:
                reply = self._dispatch(server, prediction, body)
            except BackpressureError as pushback:
                reply = {
                    "status": "backpressure",
                    "retry_after": pushback.retry_after_seconds,
                    "queued_events": pushback.queued_events,
                    "capacity": pushback.capacity,
                }
            except DrainingError as draining:
                reply = {
                    "status": "draining",
                    "retry_after": draining.retry_after_seconds,
                    "error": str(draining),
                }
            except SequenceError as sequence:
                reply = {
                    "status": "sequence",
                    "tenant": sequence.tenant_id,
                    "expected": sequence.expected,
                    "got": sequence.got,
                    "reason": sequence.reason,
                    "error": str(sequence),
                }
            except ReproError as error:
                reply = {"status": "error", "error": str(error)}
            if server._chaos_drop_reply():
                return  # injected fault: work done, ack lost
            if not self._reply(reply):
                return

    def _reply(self, reply: dict) -> bool:
        try:
            write_frame(
                self.wfile, json.dumps(reply).encode("utf-8")
            )
        except OSError:
            return False
        return True

    def _dispatch(
        self,
        server: "ServingTCPServer",
        prediction: PredictionServer,
        body: bytes,
    ) -> dict:
        op, tenant_id, operand = decode_request(body)
        if op == OP_OPEN:
            name = operand.decode("utf-8")
            program = server.programs.get(name)
            if program is None:
                raise ServingError(
                    f"unknown program {name!r}; registered: "
                    f"{', '.join(sorted(server.programs)) or '(none)'}"
                )
            prediction.open_tenant(tenant_id, program, program_name=name)
            return {"status": "ok", "opened": tenant_id}
        if op == OP_INGEST:
            if len(operand) < _SEQ.size:
                raise WireFormatError(
                    "ingest operand shorter than its sequence number"
                )
            (wire_seq,) = _SEQ.unpack_from(operand, 0)
            seq = None if wire_seq == SEQ_AUTO else wire_seq
            result = prediction.ingest(
                tenant_id, operand[_SEQ.size :], seq=seq
            )
            return {
                "status": "ok",
                "events": result.events,
                "seq": result.seq,
                "duplicate": result.duplicate,
                "selections": [
                    _selection_record(s) for s in result.selections
                ],
            }
        if op == OP_CLOSE:
            report = prediction.close_tenant(tenant_id)
            return {
                "status": "ok",
                "selections": [
                    _selection_record(s) for s in report.selections
                ],
                "report": _report_record(report),
            }
        if op == OP_SEQ:
            return {
                "status": "ok",
                "expected_seq": prediction.expected_seq(tenant_id),
            }
        raise ServingError(f"unknown opcode {op}")


def serve_forever(
    server: ServingTCPServer, poll_interval: float = 0.5
) -> None:
    """Run the accept loop until ``shutdown`` (or KeyboardInterrupt)."""
    server.serve_forever(poll_interval=poll_interval)


def serve_until_drained(
    server: ServingTCPServer,
    drain_timeout: float | None = None,
    poll_interval: float = 0.25,
) -> int:
    """Serve until SIGINT/SIGTERM, then drain; return the exit code.

    The accept loop runs on a background thread while the main thread
    (inside :func:`~repro.resilience.interrupt_guard`) waits for the
    first signal.  On that signal the server stops accepting, drains
    the prediction server — every admitted batch applied, every
    resident tenant checkpointed, WALs fsynced — and returns ``0``.  A
    second signal while draining forces an immediate ``130`` (state on
    disk stays consistent: whatever was checkpointed before the force
    is exactly what :meth:`~repro.serving.server.PredictionServer.restore`
    will see).  A drain that exceeds ``drain_timeout`` propagates
    :class:`~repro.errors.ServingError`.
    """
    prediction = server.prediction_server
    thread = start_background(server)
    with interrupt_guard() as flag:
        try:
            while not flag.fired:
                time.sleep(poll_interval)
        except KeyboardInterrupt:
            server.shutdown()
            return 130
        server.shutdown()
        try:
            prediction.drain(timeout=drain_timeout)
        except KeyboardInterrupt:
            return 130
    server.server_close()
    thread.join(timeout=5.0)
    prediction.close()
    return 0


def start_background(server: ServingTCPServer) -> threading.Thread:
    """Serve on a daemon thread (tests and the in-process loadgen)."""
    thread = threading.Thread(
        target=server.serve_forever, name="serving-tcp", daemon=True
    )
    thread.start()
    return thread


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class ServingClient:
    """Blocking client for one connection to a :class:`ServingTCPServer`.

    Raises the same typed exceptions as the in-process API:
    :class:`~repro.errors.BackpressureError` and
    :class:`~repro.errors.DrainingError` for admission rejections,
    :class:`~repro.errors.SequenceError` for inadmissible sequence
    numbers and :class:`~repro.errors.ServingError` for other
    server-side failures.

    With a ``retry_policy``, transport failures (reset, timeout, torn
    reply) on *idempotent* operations — open, explicit-seq ingest and
    the seq query — trigger a bounded reconnect-and-retry on the
    policy's deterministic backoff schedule;
    :class:`~repro.errors.ConnectionLostError` is raised once the
    budget is spent.  Auto-seq ingest and close are not safe to repeat
    and fail immediately.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 10.0,
        retry_policy: RetryPolicy | None = None,
    ):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry_policy
        self._op_index = 0
        self._sock: socket.socket | None = None
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def _teardown(self) -> None:
        if self._sock is None:
            return
        for closer in (self._rfile.close, self._wfile.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass
        self._sock = None

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _roundtrip(self, frame: bytes, idempotent: bool = False) -> dict:
        self._op_index += 1
        op_index = self._op_index
        attempts = 0
        while True:
            attempts += 1
            try:
                if self._sock is None:
                    self._connect()
                self._wfile.write(frame)
                self._wfile.flush()
                body = read_frame(self._rfile)
                if body is None:
                    raise WireFormatError(
                        "server closed the connection before replying"
                    )
                break
            except (OSError, WireFormatError) as failure:
                self._teardown()
                budget = (
                    self._retry.max_retries
                    if (self._retry is not None and idempotent)
                    else 0
                )
                if attempts > budget:
                    raise ConnectionLostError(
                        "connection to the prediction server lost"
                        + ("" if idempotent else " (operation not retryable)"),
                        attempts=attempts,
                    ) from failure
                time.sleep(
                    self._retry.backoff_seconds(op_index, attempts)
                )
        reply = json.loads(body.decode("utf-8"))
        status = reply.get("status")
        if status == "ok":
            return reply
        if status == "backpressure":
            raise BackpressureError(
                tenant_id="",
                queued_events=int(reply.get("queued_events", 0)),
                capacity=int(reply.get("capacity", 0)),
                retry_after_seconds=float(reply.get("retry_after", 0.05)),
            )
        if status == "draining":
            raise DrainingError(float(reply.get("retry_after", 0.05)))
        if status == "sequence":
            raise SequenceError(
                reply.get("tenant", ""),
                expected=int(reply.get("expected", 0)),
                got=int(reply.get("got", 0)),
                reason=reply.get("reason", "gap"),
            )
        if status == "frame":
            raise FrameTooLargeError(
                int(reply.get("declared", 0)), int(reply.get("limit", 0))
            )
        raise ServingError(reply.get("error", "unknown server error"))

    def open(self, tenant_id: str, program_name: str) -> dict:
        return self._roundtrip(
            encode_request(
                OP_OPEN, tenant_id, program_name.encode("utf-8")
            ),
            idempotent=True,
        )

    def ingest(
        self,
        tenant_id: str,
        batch: EventBatch | bytes,
        seq: int | None = None,
    ) -> dict:
        operand = (
            encode_batch(batch)
            if isinstance(batch, EventBatch)
            else bytes(batch)
        )
        return self._roundtrip(
            encode_ingest(tenant_id, operand, seq=seq),
            idempotent=seq is not None,
        )

    def expected_seq(self, tenant_id: str) -> int:
        reply = self._roundtrip(
            encode_request(OP_SEQ, tenant_id), idempotent=True
        )
        return int(reply["expected_seq"])

    def close_tenant(self, tenant_id: str) -> dict:
        return self._roundtrip(encode_request(OP_CLOSE, tenant_id))
