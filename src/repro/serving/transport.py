"""TCP transport for the prediction server.

A deliberately thin request/reply protocol so the in-process
:class:`~repro.serving.server.PredictionServer` can run as a real
long-lived network service (``repro serve``).  Every message is one
length-prefixed frame::

    u32  frame length (little endian, body bytes)
    u8   opcode          (1=open, 2=ingest, 3=close)
    u16  tenant id length
    ...  tenant id (utf-8)
    ...  operand — open: program name (utf-8, resolved against the
         server's program registry); ingest: a wire-encoded
         EventBatch (see repro.serving.wire); close: empty

Replies are a length-prefixed UTF-8 JSON object: ``{"status": "ok",
...}`` with operation results, ``{"status": "backpressure",
"retry_after": s, ...}`` for bounded-queue rejections, or
``{"status": "error", "error": msg}`` for every other failure.  Clients
never see a hung connection because of a full queue — backpressure is
an immediate, explicit reply.

Programs do not travel over the wire: tenants name a program from the
registry the server was started with (e.g. the generated corpus), which
keeps the transport free of code serialization.
"""

from __future__ import annotations

import json
import socket
import socketserver
import struct
import threading

from repro.cfg.program import Program
from repro.errors import (
    BackpressureError,
    ReproError,
    ServingError,
    WireFormatError,
)
from repro.serving.server import PredictionServer, TenantReport
from repro.serving.session import HotPathSelection
from repro.serving.wire import encode_batch
from repro.trace.batch import EventBatch

OP_OPEN = 1
OP_INGEST = 2
OP_CLOSE = 3

_LENGTH = struct.Struct("<I")
_PREFIX = struct.Struct("<BH")

#: Upper bound on one frame, rejecting absurd length prefixes before
#: allocation (64 MiB is far beyond any sane batch).
MAX_FRAME_BYTES = 64 << 20


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_request(op: int, tenant_id: str, operand: bytes = b"") -> bytes:
    """One request frame, length prefix included."""
    tenant = tenant_id.encode("utf-8")
    body = _PREFIX.pack(op, len(tenant)) + tenant + operand
    return _LENGTH.pack(len(body)) + body


def decode_request(body: bytes) -> tuple[int, str, bytes]:
    """Split a request body into (opcode, tenant id, operand)."""
    if len(body) < _PREFIX.size:
        raise WireFormatError(
            f"request body of {len(body)} bytes is shorter than the "
            f"{_PREFIX.size}-byte prefix"
        )
    op, tenant_len = _PREFIX.unpack_from(body, 0)
    end = _PREFIX.size + tenant_len
    if len(body) < end:
        raise WireFormatError("request truncated inside the tenant id")
    tenant_id = body[_PREFIX.size : end].decode("utf-8")
    return op, tenant_id, body[end:]


def _read_exactly(stream, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on a clean EOF at a frame
    boundary, error on EOF mid-frame."""
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise WireFormatError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream) -> bytes | None:
    """Read one length-prefixed frame body (None on clean EOF)."""
    prefix = _read_exactly(stream, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    body = _read_exactly(stream, length)
    if body is None:
        raise WireFormatError("connection closed mid-frame")
    return body


def write_frame(stream, body: bytes) -> None:
    stream.write(_LENGTH.pack(len(body)) + body)
    stream.flush()


def _selection_record(selection: HotPathSelection) -> dict:
    return {
        "path_id": selection.path_id,
        "time": selection.time,
        "head_uid": selection.head_uid,
        "blocks": list(selection.blocks),
        "num_instructions": selection.num_instructions,
    }


def _report_record(report: TenantReport) -> dict:
    return {
        "events_ingested": report.events_ingested,
        "batches_ingested": report.batches_ingested,
        "flow": report.flow,
        "num_paths": report.num_paths,
        "num_predictions": report.outcome.num_predictions,
        "counter_space": report.counter_space,
        "state_bytes": report.state_bytes,
        "evictions": report.evictions,
    }


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class ServingTCPServer(socketserver.ThreadingTCPServer):
    """One thread per connection in front of a :class:`PredictionServer`.

    ``programs`` is the registry tenants may open against (name →
    :class:`Program`).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        server: PredictionServer,
        programs: dict[str, Program],
    ):
        self.prediction_server = server
        self.programs = dict(programs)
        super().__init__(address, _RequestHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: ServingTCPServer = self.server  # type: ignore[assignment]
        prediction = server.prediction_server
        while True:
            try:
                body = read_frame(self.rfile)
            except WireFormatError:
                return  # peer vanished or spoke garbage framing
            if body is None:
                return
            try:
                reply = self._dispatch(server, prediction, body)
            except BackpressureError as pushback:
                reply = {
                    "status": "backpressure",
                    "retry_after": pushback.retry_after_seconds,
                    "queued_events": pushback.queued_events,
                    "capacity": pushback.capacity,
                }
            except ReproError as error:
                reply = {"status": "error", "error": str(error)}
            write_frame(
                self.wfile, json.dumps(reply).encode("utf-8")
            )

    def _dispatch(
        self,
        server: "ServingTCPServer",
        prediction: PredictionServer,
        body: bytes,
    ) -> dict:
        op, tenant_id, operand = decode_request(body)
        if op == OP_OPEN:
            name = operand.decode("utf-8")
            program = server.programs.get(name)
            if program is None:
                raise ServingError(
                    f"unknown program {name!r}; registered: "
                    f"{', '.join(sorted(server.programs)) or '(none)'}"
                )
            prediction.open_tenant(tenant_id, program)
            return {"status": "ok", "opened": tenant_id}
        if op == OP_INGEST:
            result = prediction.ingest(tenant_id, operand)
            return {
                "status": "ok",
                "events": result.events,
                "seq": result.seq,
                "selections": [
                    _selection_record(s) for s in result.selections
                ],
            }
        if op == OP_CLOSE:
            report = prediction.close_tenant(tenant_id)
            return {
                "status": "ok",
                "selections": [
                    _selection_record(s) for s in report.selections
                ],
                "report": _report_record(report),
            }
        raise ServingError(f"unknown opcode {op}")


def serve_forever(
    server: ServingTCPServer, poll_interval: float = 0.5
) -> None:
    """Run the accept loop until ``shutdown`` (or KeyboardInterrupt)."""
    server.serve_forever(poll_interval=poll_interval)


def start_background(server: ServingTCPServer) -> threading.Thread:
    """Serve on a daemon thread (tests and the in-process loadgen)."""
    thread = threading.Thread(
        target=server.serve_forever, name="serving-tcp", daemon=True
    )
    thread.start()
    return thread


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class ServingClient:
    """Blocking client for one connection to a :class:`ServingTCPServer`.

    Raises :class:`~repro.errors.BackpressureError` on bounded-queue
    rejections and :class:`~repro.errors.ServingError` on server-side
    errors, mirroring the in-process API.
    """

    def __init__(self, host: str, port: int, timeout: float | None = 10.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def close(self) -> None:
        self._rfile.close()
        self._wfile.close()
        self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _roundtrip(self, frame: bytes) -> dict:
        self._wfile.write(frame)
        self._wfile.flush()
        body = read_frame(self._rfile)
        if body is None:
            raise ServingError("server closed the connection")
        reply = json.loads(body.decode("utf-8"))
        status = reply.get("status")
        if status == "ok":
            return reply
        if status == "backpressure":
            raise BackpressureError(
                tenant_id="",
                queued_events=int(reply.get("queued_events", 0)),
                capacity=int(reply.get("capacity", 0)),
                retry_after_seconds=float(reply.get("retry_after", 0.05)),
            )
        raise ServingError(reply.get("error", "unknown server error"))

    def open(self, tenant_id: str, program_name: str) -> dict:
        return self._roundtrip(
            encode_request(
                OP_OPEN, tenant_id, program_name.encode("utf-8")
            )
        )

    def ingest(
        self, tenant_id: str, batch: EventBatch | bytes
    ) -> dict:
        operand = (
            encode_batch(batch)
            if isinstance(batch, EventBatch)
            else bytes(batch)
        )
        return self._roundtrip(
            encode_request(OP_INGEST, tenant_id, operand)
        )

    def close_tenant(self, tenant_id: str) -> dict:
        return self._roundtrip(encode_request(OP_CLOSE, tenant_id))
