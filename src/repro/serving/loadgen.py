"""Replay load generator for the prediction server.

Replays the workload corpus as many interleaved tenant streams: a small
set of distinct *streams* (seeded generated programs walked into
columnar event batches, optionally pre-encoded to the wire format) is
fanned out across hundreds-to-thousands of tenants, driven by a pool of
client threads.  Each worker owns a disjoint slice of the tenants and
round-robins their batches, so the server sees the many-tenant
interleaving a fleet would produce while every individual stream stays
in order.

Measurements are per-ingest wall latency (p50/p99), end-to-end events
and predictions per second, and backpressure retry counts; everything
lands in a :class:`LoadReport` and, via ``publish``, in the
``repro.obs`` registry/run-manifest machinery (``serving.*`` for the
server's own accounting, ``loadgen.*`` for the client side).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cfg import generate_program, procedure_loops
from repro.cfg.program import Program
from repro.errors import BackpressureError, DrainingError, ServingError
from repro.obs.core import Registry, get_registry
from repro.prediction.net import NETPredictor
from repro.serving.server import PredictionServer, ServerConfig
from repro.serving.wire import encode_batch
from repro.trace import CFGWalker, RandomOracle, TripCountOracle
from repro.trace.batch import EventBatch
from repro.trace.recorder import record_path_trace


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load-generation run."""

    #: Concurrent tenants replayed against the server.
    num_tenants: int = 200
    #: Distinct underlying streams (tenant ``i`` replays stream
    #: ``i % num_streams`` under its own identity and private state).
    num_streams: int = 4
    #: Events per tenant stream.
    events_per_tenant: int = 2_000
    #: Events per ingest batch.
    batch_events: int = 256
    #: Client threads driving the replay.
    workers: int = 4
    #: Encode/decode every batch through the wire format (as a real
    #: network deployment would) instead of handing batches in-process.
    wire: bool = True
    #: Base seed for corpus generation.
    seed: int = 7
    #: Loop trip count hint for the corpus oracles.
    trips: int = 25
    #: Retries a worker grants one batch under backpressure before
    #: counting the tenant as shed.
    max_retries: int = 50
    #: Server configuration for the run.
    server: ServerConfig = field(default_factory=ServerConfig)

    def __post_init__(self) -> None:
        if self.num_tenants < 1:
            raise ServingError("num_tenants must be positive")
        if self.num_streams < 1:
            raise ServingError("num_streams must be positive")
        if self.events_per_tenant < 1:
            raise ServingError("events_per_tenant must be positive")
        if self.batch_events < 1:
            raise ServingError("batch_events must be positive")
        if self.workers < 1:
            raise ServingError("workers must be positive")


@dataclass(frozen=True)
class TenantStream:
    """One replayable stream: a program plus its pre-built batches."""

    name: str
    program: Program
    batches: tuple[EventBatch, ...]
    payloads: tuple[bytes, ...]

    @property
    def num_events(self) -> int:
        return sum(len(batch) for batch in self.batches)


@dataclass(frozen=True)
class LoadReport:
    """Results of one load-generation run."""

    tenants: int
    streams: int
    events: int
    batches: int
    predictions: int
    elapsed_seconds: float
    p50_latency_ms: float
    p99_latency_ms: float
    max_latency_ms: float
    backpressure_retries: int
    shed_batches: int
    server_stats: dict

    @property
    def events_per_sec(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.events / self.elapsed_seconds

    @property
    def predictions_per_sec(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.predictions / self.elapsed_seconds

    def to_dict(self) -> dict:
        """JSON-ready rendering (the BENCH/manifest payload)."""
        return {
            "tenants": self.tenants,
            "streams": self.streams,
            "events": self.events,
            "batches": self.batches,
            "predictions": self.predictions,
            "elapsed_seconds": self.elapsed_seconds,
            "events_per_sec": self.events_per_sec,
            "predictions_per_sec": self.predictions_per_sec,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "max_latency_ms": self.max_latency_ms,
            "backpressure_retries": self.backpressure_retries,
            "shed_batches": self.shed_batches,
            "server_stats": {
                key: value for key, value in self.server_stats.items()
            },
        }


# ----------------------------------------------------------------------
# Corpus
# ----------------------------------------------------------------------
def _walk_seed(
    seed: int, events: int, batch_events: int, trips: int
) -> tuple[Program, tuple[EventBatch, ...]]:
    program = generate_program(seed=seed, num_procedures=3)
    trip_counts = {}
    for name in program.procedures:
        for header in procedure_loops(program, name).headers:
            trip_counts[header] = trips
    oracle = TripCountOracle(
        RandomOracle(seed * 7919 + 13, default_bias=0.5), trip_counts
    )
    walker = CFGWalker(program, oracle)
    batches = tuple(
        walker.walk_batched(
            max_events=events, batch_size=batch_events, truncate=True
        )
    )
    return program, batches


def build_stream(
    seed: int, events: int, batch_events: int, trips: int = 25
) -> TenantStream:
    """Generate one replayable stream from a seeded program walk.

    Generated programs are data-dependent: some seeds walk straight to
    the exit in a handful of transfers.  The builder deterministically
    probes ``seed``-derived candidates until one sustains the requested
    event count (keeping the longest walk seen as a fallback), so every
    stream in a corpus carries real load.
    """
    best: tuple[Program, tuple[EventBatch, ...]] | None = None
    best_events = -1
    for attempt in range(32):
        candidate = seed + attempt * 1009
        program, batches = _walk_seed(
            candidate, events, batch_events, trips
        )
        walked = sum(len(batch) for batch in batches)
        if walked > best_events:
            best, best_events, seed_used = (program, batches), walked, candidate
        if walked >= events:
            break
    program, batches = best
    payloads = tuple(encode_batch(batch) for batch in batches)
    return TenantStream(
        name=f"gen:{seed_used}",
        program=program,
        batches=batches,
        payloads=payloads,
    )


def build_corpus(config: LoadgenConfig) -> list[TenantStream]:
    """The distinct streams a run replays (built once, shared)."""
    return [
        build_stream(
            seed=config.seed + index,
            events=config.events_per_tenant,
            batch_events=config.batch_events,
            trips=config.trips,
        )
        for index in range(config.num_streams)
    ]


def standalone_outcome(stream: TenantStream, delay: int, max_blocks=256):
    """Reference outcome of one stream run alone through NET offline.

    What the server must reproduce per tenant regardless of
    interleaving — used by the verification tests and by ``run_load``'s
    spot check.
    """
    trace = record_path_trace(
        stream.program, iter(stream.batches), max_blocks=max_blocks
    )
    return NETPredictor(delay).run(trace)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
class _WorkerState:
    __slots__ = ("latencies", "predictions", "retries", "shed", "error")

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.predictions = 0
        self.retries = 0
        self.shed = 0
        self.error: BaseException | None = None


def _replay_worker(
    server: PredictionServer,
    config: LoadgenConfig,
    corpus: list[TenantStream],
    tenant_ids: list[str],
    state: _WorkerState,
    start_barrier: threading.Barrier,
) -> None:
    try:
        # Open every owned tenant up front, then round-robin batches
        # across them so the server sees interleaved streams.
        streams = {
            tid: corpus[int(tid.split("-")[-1]) % len(corpus)]
            for tid in tenant_ids
        }
        # Durable servers take explicit sequence numbers (the batch's
        # index within its stream) so a crash-interrupted load test can
        # resume exactly-once; in-memory runs keep the auto-seq path.
        explicit_seq = server.durable
        for tid, stream in streams.items():
            server.open_tenant(tid, stream.program, program_name=stream.name)
        cursors = {tid: 0 for tid in tenant_ids}
        start_barrier.wait()
        live = list(tenant_ids)
        while live:
            finished = []
            for tid in live:
                stream = streams[tid]
                index = cursors[tid]
                if index >= len(stream.batches):
                    finished.append(tid)
                    continue
                payload = (
                    stream.payloads[index]
                    if config.wire
                    else stream.batches[index]
                )
                attempts = 0
                while True:
                    started = time.perf_counter()
                    try:
                        result = server.ingest(
                            tid,
                            payload,
                            seq=index if explicit_seq else None,
                        )
                    except (BackpressureError, DrainingError) as pushback:
                        attempts += 1
                        state.retries += 1
                        if attempts > config.max_retries:
                            state.shed += 1
                            break
                        time.sleep(pushback.retry_after_seconds)
                        continue
                    state.latencies.append(
                        time.perf_counter() - started
                    )
                    state.predictions += len(result.selections)
                    break
                cursors[tid] = index + 1
            for tid in finished:
                live.remove(tid)
    except BaseException as error:  # surfaced by run_load
        state.error = error


def run_load(
    config: LoadgenConfig | None = None,
    obs: Registry | None = None,
    corpus: list[TenantStream] | None = None,
    state_dir: str | None = None,
) -> LoadReport:
    """Run one load-generation session against a fresh server.

    Builds (or reuses) the stream corpus, replays it as
    ``config.num_tenants`` interleaved tenants from
    ``config.workers`` threads, closes every tenant, and returns the
    measured :class:`LoadReport`.  With ``obs`` set, the server's
    accounting is published under ``serving.*`` and the client-side
    measurements under ``loadgen.*``.  With ``state_dir``, the server
    runs durably (checkpoints + WAL) and batches carry explicit
    sequence numbers — the durable leg the serving benchmark gates.
    """
    config = config if config is not None else LoadgenConfig()
    registry = get_registry(obs)
    with registry.span("loadgen.corpus"):
        if corpus is None:
            corpus = build_corpus(config)
    server = PredictionServer(config.server, state_dir=state_dir)

    tenant_ids = [f"tenant-{i}" for i in range(config.num_tenants)]
    workers = min(config.workers, config.num_tenants)
    slices: list[list[str]] = [[] for _ in range(workers)]
    for index, tid in enumerate(tenant_ids):
        slices[index % workers].append(tid)

    states = [_WorkerState() for _ in range(workers)]
    start_barrier = threading.Barrier(workers + 1)
    threads = [
        threading.Thread(
            target=_replay_worker,
            args=(server, config, corpus, slices[i], states[i], start_barrier),
            name=f"loadgen-{i}",
            daemon=True,
        )
        for i in range(workers)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    for state in states:
        if state.error is not None:
            raise state.error

    close_predictions = 0
    for tid in tenant_ids:
        report = server.close_tenant(tid)
        close_predictions += len(report.selections)

    latencies = np.asarray(
        [value for state in states for value in state.latencies]
    )
    predictions = (
        sum(state.predictions for state in states) + close_predictions
    )
    events = sum(
        corpus[i % len(corpus)].num_events
        for i in range(config.num_tenants)
    )
    shed = sum(state.shed for state in states)
    if shed:
        events = int(server.stats()["ingested_events"])
    batches = int(server.stats()["ingested_batches"])
    report = LoadReport(
        tenants=config.num_tenants,
        streams=len(corpus),
        events=events,
        batches=batches,
        predictions=predictions,
        elapsed_seconds=elapsed,
        p50_latency_ms=(
            float(np.percentile(latencies, 50) * 1e3)
            if len(latencies)
            else 0.0
        ),
        p99_latency_ms=(
            float(np.percentile(latencies, 99) * 1e3)
            if len(latencies)
            else 0.0
        ),
        max_latency_ms=(
            float(latencies.max() * 1e3) if len(latencies) else 0.0
        ),
        backpressure_retries=sum(state.retries for state in states),
        shed_batches=shed,
        server_stats=server.stats(),
    )
    server.close()

    if registry.enabled:
        server.publish(registry.child("serving"))
        client = registry.child("loadgen")
        client.counter("tenants").inc(report.tenants)
        client.counter("events").inc(report.events)
        client.counter("batches").inc(report.batches)
        client.counter("predictions").inc(report.predictions)
        client.counter("backpressure_retries").inc(
            report.backpressure_retries
        )
        client.gauge("events_per_sec").set(report.events_per_sec)
        client.gauge("predictions_per_sec").set(
            report.predictions_per_sec
        )
        client.gauge("p50_latency_ms").set(report.p50_latency_ms)
        client.gauge("p99_latency_ms").set(report.p99_latency_ms)
        client.timer("replay").observe(elapsed)
    return report


def render_report(report: LoadReport) -> str:
    """Human-readable summary of one load run."""
    lines = [
        f"tenants:             {report.tenants}",
        f"distinct streams:    {report.streams}",
        f"events ingested:     {report.events:,}",
        f"batches ingested:    {report.batches:,}",
        f"hot-path selections: {report.predictions:,}",
        f"elapsed:             {report.elapsed_seconds:.3f}s",
        f"events/sec:          {report.events_per_sec:,.0f}",
        f"predictions/sec:     {report.predictions_per_sec:,.0f}",
        f"ingest p50:          {report.p50_latency_ms:.3f} ms",
        f"ingest p99:          {report.p99_latency_ms:.3f} ms",
        f"ingest max:          {report.max_latency_ms:.3f} ms",
        f"backpressure retry:  {report.backpressure_retries}",
        f"shed batches:        {report.shed_batches}",
        f"evictions:           {int(report.server_stats['evictions'])}",
    ]
    return "\n".join(lines)
