"""Multi-tenant online hot-path prediction serving.

The paper's predictor runs *inside* one program; this package runs it
*as a service* for many programs at once.  Each tenant (one running
program) streams wire-encoded event batches at a
:class:`PredictionServer`, which shards per-tenant NET predictor state
across locks, answers every batch with the hot-path selections it
triggered, pushes back explicitly when a tenant's bounded ingest queue
fills, and evicts idle predictor state LRU-first when the fleet exceeds
its memory budget — the "less is more" counter-space economy applied at
fleet scale.

Layers, bottom up:

- :mod:`repro.serving.wire` — the EventBatch network format.
- :mod:`repro.serving.session` — one tenant's streaming
  extraction + NET pipeline and its memory meter.
- :mod:`repro.serving.server` — sharded multi-tenant coordination:
  admission, backpressure, FIFO turnstiles, budget eviction.
- :mod:`repro.serving.durability` — per-shard checkpoint/WAL store
  making tenant streams crash-safe (snapshots, digest log, torn-tail
  recovery).
- :mod:`repro.serving.transport` — a thin TCP request/reply skin with
  exactly-once sequence numbers and bounded client retry.
- :mod:`repro.serving.loadgen` — the replay load generator driving
  hundreds of interleaved tenant streams for benchmarks and tests.
- :mod:`repro.serving.chaos` — the chaos harness proving recovered
  predictions byte-identical to an uninterrupted run.
"""

from repro.serving.chaos import (
    ChaosConfig,
    ChaosReport,
    default_plan,
    render_chaos_report,
    run_chaos,
    schedule_steps,
)
from repro.serving.durability import DurabilityStore, TenantRecovery
from repro.serving.loadgen import (
    LoadgenConfig,
    LoadReport,
    TenantStream,
    build_corpus,
    build_stream,
    render_report,
    run_load,
    standalone_outcome,
)
from repro.serving.server import (
    IngestResult,
    PredictionServer,
    ServerConfig,
    TenantReport,
)
from repro.serving.session import HotPathSelection, TenantSession
from repro.serving.transport import (
    SEQ_AUTO,
    ServingClient,
    ServingTCPServer,
    serve_until_drained,
    start_background,
)
from repro.serving.wire import (
    BYTES_PER_EVENT,
    HEADER_BYTES,
    WIRE_MAGIC,
    WIRE_VERSION,
    batch_digest,
    decode_batch,
    encode_batch,
)

__all__ = [
    "BYTES_PER_EVENT",
    "HEADER_BYTES",
    "SEQ_AUTO",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "ChaosConfig",
    "ChaosReport",
    "DurabilityStore",
    "HotPathSelection",
    "IngestResult",
    "LoadReport",
    "LoadgenConfig",
    "PredictionServer",
    "ServerConfig",
    "ServingClient",
    "ServingTCPServer",
    "TenantRecovery",
    "TenantReport",
    "TenantSession",
    "TenantStream",
    "batch_digest",
    "build_corpus",
    "build_stream",
    "decode_batch",
    "default_plan",
    "encode_batch",
    "render_chaos_report",
    "render_report",
    "run_chaos",
    "run_load",
    "schedule_steps",
    "serve_until_drained",
    "standalone_outcome",
    "start_background",
]
