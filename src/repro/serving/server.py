"""The multi-tenant online hot-path prediction server.

:class:`PredictionServer` accepts columnar event batches (either
:class:`~repro.trace.batch.EventBatch` objects or their wire encoding)
from many concurrent tenants and answers each ingest with the
:class:`~repro.serving.session.HotPathSelection` records that batch
triggered.  One tenant is one running program; its predictor state is a
private :class:`~repro.serving.session.TenantSession`.

Concurrency model
-----------------
Tenants are hashed onto a fixed set of *shards*.  Each shard has two
locks with distinct jobs:

* an **admission condition** guarding the shard's bookkeeping (tenant
  map, queue depths, LRU clock).  Admission is cheap and never blocks
  on predictor work, so backpressure decisions stay responsive while
  batches are being applied;
* a **state lock** held while applying a batch to any session in the
  shard — the per-shard predictor-state lock of the design.

A per-tenant *turnstile* (monotonic ticket/turn counters under the
admission condition) serializes one tenant's batches in admission
order, so a tenant's stream is applied strictly in sequence even when
several transport threads carry it.

Backpressure
------------
Each tenant's ingest queue — events admitted but not yet applied — is
bounded.  A batch that would overflow it is *rejected* with
:class:`~repro.errors.BackpressureError` carrying a retry-after hint;
the server never buffers unboundedly on behalf of a slow consumer.

Memory budget
-------------
Sessions meter their predictor-state bytes (head counters, interned
paths, segment memo).  When a shard's share of the configured budget is
exceeded, idle tenants are evicted in LRU order: their session is
dropped (the counters are exactly the cheap, reconstructible state the
paper's Table 2 argues NET keeps small) and a later batch readmits them
with a fresh session that re-warms.  Tenants with queued or in-flight
work are never evicted.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.cfg.program import Program
from repro.errors import BackpressureError, ServingError
from repro.obs.core import Registry, get_registry
from repro.prediction.base import PredictionOutcome
from repro.serving.session import HotPathSelection, TenantSession
from repro.serving.wire import decode_batch
from repro.trace.batch import EventBatch


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of one :class:`PredictionServer`.

    Attributes
    ----------
    num_shards:
        Number of independent shards tenants are hashed onto.
    delay:
        NET prediction delay τ applied to every tenant.
    max_blocks:
        Per-path block cap handed to each tenant's extractor.
    max_queued_events:
        Per-tenant ingest-queue bound, in events (admitted but not yet
        applied).  Ingests beyond it are rejected with backpressure.
    memory_budget_bytes:
        Server-wide predictor-state budget; each shard enforces its
        ``1/num_shards`` share.  ``None`` disables eviction.
    retry_after_seconds:
        Base retry-after hint attached to backpressure rejections.
    count_backward_arrivals_only:
        Forwarded to every tenant's NET session (Dynamo counts only
        backward arrivals; see :class:`~repro.prediction.net.NETPredictor`).
    """

    num_shards: int = 8
    delay: int = 50
    max_blocks: int | None = 256
    max_queued_events: int = 1 << 16
    memory_budget_bytes: int | None = None
    retry_after_seconds: float = 0.05
    count_backward_arrivals_only: bool = True

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ServingError("num_shards must be positive")
        if self.delay < 0:
            raise ServingError("delay must be non-negative")
        if self.max_queued_events < 1:
            raise ServingError("max_queued_events must be positive")
        if (
            self.memory_budget_bytes is not None
            and self.memory_budget_bytes < 1
        ):
            raise ServingError("memory_budget_bytes must be positive")
        if self.retry_after_seconds <= 0:
            raise ServingError("retry_after_seconds must be positive")


@dataclass(frozen=True)
class IngestResult:
    """Reply to one accepted ingest."""

    tenant_id: str
    seq: int
    events: int
    selections: tuple[HotPathSelection, ...]


@dataclass(frozen=True)
class TenantReport:
    """Final record returned when a tenant's stream is closed."""

    tenant_id: str
    selections: tuple[HotPathSelection, ...]
    outcome: PredictionOutcome
    events_ingested: int
    batches_ingested: int
    flow: int
    num_paths: int
    counter_space: int
    state_bytes: int
    evictions: int


@dataclass
class _Tenant:
    tenant_id: str
    program: Program
    session: TenantSession | None = None
    queued_events: int = 0
    next_seq: int = 0
    turn: int = 0
    last_used: int = 0
    closed: bool = False
    poisoned: bool = False
    had_session: bool = False
    resume_uid: int | None = None
    evictions: int = 0
    events_ingested: int = 0
    batches_ingested: int = 0


class _Shard:
    __slots__ = (
        "cond",
        "state_lock",
        "tenants",
        "clock",
        "state_bytes",
        "stats",
    )

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.state_lock = threading.Lock()
        self.tenants: dict[str, _Tenant] = {}
        self.clock = 0
        self.state_bytes = 0
        self.stats = {
            "ingested_events": 0,
            "ingested_batches": 0,
            "selections": 0,
            "rejects": 0,
            "evictions": 0,
            "evicted_bytes": 0,
            "readmissions": 0,
            "tenants_opened": 0,
            "tenants_closed": 0,
            "apply_seconds": 0.0,
        }


class PredictionServer:
    """Sharded, thread-safe, long-running NET prediction service.

    ``admit_hook``/``apply_hook`` are deterministic-test instrumentation
    points: ``admit_hook(tenant_id, seq)`` fires after a batch passes
    admission (before it waits its turn), ``apply_hook(tenant_id, batch)``
    fires under the shard state lock immediately before the batch is
    applied.  Production servers leave both unset.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        admit_hook: Callable[[str, int], None] | None = None,
        apply_hook: Callable[[str, EventBatch], None] | None = None,
    ):
        self.config = config if config is not None else ServerConfig()
        self._shards = [
            _Shard() for _ in range(self.config.num_shards)
        ]
        self._admit_hook = admit_hook
        self._apply_hook = apply_hook

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_index(self, tenant_id: str) -> int:
        """The shard ``tenant_id`` is routed to (stable across runs)."""
        return zlib.crc32(tenant_id.encode("utf-8")) % len(self._shards)

    def _shard(self, tenant_id: str) -> _Shard:
        return self._shards[self.shard_index(tenant_id)]

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------
    def open_tenant(self, tenant_id: str, program: Program) -> None:
        """Register ``tenant_id`` with its program ahead of ingesting.

        Optional — ``ingest`` with ``program=`` performs the same
        registration on first contact.
        """
        shard = self._shard(tenant_id)
        with shard.cond:
            self._admit_tenant(shard, tenant_id, program)

    def _admit_tenant(
        self, shard: _Shard, tenant_id: str, program: Program | None
    ) -> _Tenant:
        tenant = shard.tenants.get(tenant_id)
        if tenant is None:
            if program is None:
                raise ServingError(
                    f"unknown tenant {tenant_id!r}; open it first (or "
                    "pass its program with the first ingest)"
                )
            tenant = _Tenant(tenant_id=tenant_id, program=program)
            shard.tenants[tenant_id] = tenant
            shard.stats["tenants_opened"] += 1
        if tenant.closed:
            raise ServingError(f"tenant {tenant_id!r} is closed")
        if tenant.poisoned:
            raise ServingError(
                f"tenant {tenant_id!r} stream is poisoned by an earlier "
                "ingest failure; close and reopen it"
            )
        return tenant

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        tenant_id: str,
        payload: EventBatch | bytes | bytearray | memoryview,
        program: Program | None = None,
    ) -> IngestResult:
        """Apply one batch to ``tenant_id``'s stream.

        ``payload`` is either an in-process :class:`EventBatch` or its
        wire encoding (decoded before any lock is taken).  Returns the
        selections the batch triggered; raises
        :class:`~repro.errors.BackpressureError` when the tenant's
        ingest queue is full and a trace/serving error when the payload
        or stream is invalid.
        """
        batch = (
            payload
            if isinstance(payload, EventBatch)
            else decode_batch(payload)
        )
        n = len(batch)
        shard = self._shard(tenant_id)
        config = self.config

        with shard.cond:
            tenant = self._admit_tenant(shard, tenant_id, program)
            if tenant.queued_events + n > config.max_queued_events:
                shard.stats["rejects"] += 1
                raise BackpressureError(
                    tenant_id,
                    queued_events=tenant.queued_events,
                    capacity=config.max_queued_events,
                    retry_after_seconds=config.retry_after_seconds,
                )
            tenant.queued_events += n
            seq = tenant.next_seq
            tenant.next_seq += 1
            if self._admit_hook is not None:
                self._admit_hook(tenant_id, seq)
            while tenant.turn != seq:
                shard.cond.wait()

        try:
            with shard.state_lock:
                session = self._resident_session(shard, tenant)
                if self._apply_hook is not None:
                    self._apply_hook(tenant_id, batch)
                before_bytes = session.state_bytes
                started = time.perf_counter()
                selections = session.ingest(batch)
                elapsed = time.perf_counter() - started
                delta_bytes = session.state_bytes - before_bytes
        except Exception:
            with shard.cond:
                tenant.poisoned = True
                self._finish_turn(shard, tenant, n)
            raise

        with shard.cond:
            tenant.events_ingested += n
            tenant.batches_ingested += 1
            stats = shard.stats
            stats["ingested_events"] += n
            stats["ingested_batches"] += 1
            stats["selections"] += len(selections)
            stats["apply_seconds"] += elapsed
            shard.state_bytes += delta_bytes
            self._touch(shard, tenant)
            self._evict_over_budget(shard, keep=tenant)
            self._finish_turn(shard, tenant, n)
        return IngestResult(
            tenant_id=tenant_id,
            seq=seq,
            events=n,
            selections=tuple(selections),
        )

    def _finish_turn(self, shard: _Shard, tenant: _Tenant, n: int) -> None:
        tenant.queued_events -= n
        tenant.turn += 1
        shard.cond.notify_all()

    def _resident_session(
        self, shard: _Shard, tenant: _Tenant
    ) -> TenantSession:
        """The tenant's live session, recreated after an eviction.

        Called under the shard state lock; the session field is only
        ever assigned here and dropped by eviction (under the admission
        condition while the tenant is idle), so the turn-holder always
        sees a consistent value.
        """
        session = tenant.session
        if session is None:
            session = TenantSession(
                tenant_id=tenant.tenant_id,
                program=tenant.program,
                delay=self.config.delay,
                max_blocks=self.config.max_blocks,
                count_backward_arrivals_only=(
                    self.config.count_backward_arrivals_only
                ),
                start_uid=tenant.resume_uid,
            )
            tenant.session = session
            if tenant.had_session:
                shard.stats["readmissions"] += 1
            tenant.had_session = True
        return session

    def _touch(self, shard: _Shard, tenant: _Tenant) -> None:
        shard.clock += 1
        tenant.last_used = shard.clock

    def _evict_over_budget(
        self, shard: _Shard, keep: _Tenant | None = None
    ) -> None:
        """Drop idle LRU sessions until the shard is back under budget."""
        budget = self.config.memory_budget_bytes
        if budget is None:
            return
        shard_budget = max(1, budget // len(self._shards))
        while shard.state_bytes > shard_budget:
            victim: _Tenant | None = None
            for tenant in shard.tenants.values():
                if tenant is keep or tenant.session is None:
                    continue
                if tenant.queued_events or tenant.turn != tenant.next_seq:
                    continue  # queued or in-flight work: not evictable
                if victim is None or tenant.last_used < victim.last_used:
                    victim = tenant
            if victim is None:
                return  # nothing evictable; budget is soft under load
            freed = victim.session.state_bytes
            # Remember where the stream stood so the fresh session a
            # readmission builds resumes mid-flight instead of tripping
            # the continuity check at the program entry.
            victim.resume_uid = victim.session.stream_position
            victim.session = None
            victim.evictions += 1
            shard.state_bytes -= freed
            shard.stats["evictions"] += 1
            shard.stats["evicted_bytes"] += freed

    # ------------------------------------------------------------------
    # Close
    # ------------------------------------------------------------------
    def close_tenant(self, tenant_id: str) -> TenantReport:
        """End ``tenant_id``'s stream and release its state.

        Takes a regular turnstile ticket, so every batch admitted
        before the close is applied first; ingests arriving after the
        close are rejected at admission.
        """
        shard = self._shard(tenant_id)
        with shard.cond:
            tenant = shard.tenants.get(tenant_id)
            if tenant is None:
                raise ServingError(f"unknown tenant {tenant_id!r}")
            if tenant.closed:
                raise ServingError(f"tenant {tenant_id!r} is closed")
            tenant.closed = True  # admission now rejects new ingests
            seq = tenant.next_seq
            tenant.next_seq += 1
            while tenant.turn != seq:
                shard.cond.wait()

        with shard.state_lock:
            session = self._resident_session(shard, tenant)
            # The shard's accounting has seen exactly the deltas of the
            # applied batches; the final flush below grows the session
            # past that, so remember what to release *before* closing.
            tracked_bytes = session.state_bytes
            selections = session.close()

        with shard.cond:
            del shard.tenants[tenant_id]
            shard.state_bytes -= tracked_bytes
            shard.stats["tenants_closed"] += 1
            shard.stats["selections"] += len(selections)
            tenant.turn += 1
            shard.cond.notify_all()
        return TenantReport(
            tenant_id=tenant_id,
            selections=tuple(selections),
            outcome=session.outcome(),
            events_ingested=tenant.events_ingested,
            batches_ingested=tenant.batches_ingested,
            flow=session.flow,
            num_paths=session.num_paths,
            counter_space=session.counter_space,
            state_bytes=session.state_bytes,
            evictions=tenant.evictions,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def tenant_queue_depth(self, tenant_id: str) -> int:
        """Events admitted but not yet applied for ``tenant_id``."""
        shard = self._shard(tenant_id)
        with shard.cond:
            tenant = shard.tenants.get(tenant_id)
            return tenant.queued_events if tenant is not None else 0

    def resident_tenants(self) -> int:
        """Tenants currently holding live predictor state."""
        total = 0
        for shard in self._shards:
            with shard.cond:
                total += sum(
                    1
                    for tenant in shard.tenants.values()
                    if tenant.session is not None
                )
        return total

    def state_bytes(self) -> int:
        """Metered predictor-state bytes across all shards."""
        total = 0
        for shard in self._shards:
            with shard.cond:
                total += shard.state_bytes
        return total

    def stats(self) -> dict:
        """Aggregated server statistics as a plain dict."""
        totals: dict[str, float] = {}
        for shard in self._shards:
            with shard.cond:
                for key, value in shard.stats.items():
                    totals[key] = totals.get(key, 0) + value
        totals["resident_tenants"] = self.resident_tenants()
        totals["state_bytes"] = self.state_bytes()
        return totals

    def publish(self, obs: Registry | None) -> None:
        """Fold the server's statistics into an obs registry (once, at
        the end of a run): counters under their stat names, the current
        residency and state bytes as gauges, apply time as a timer."""
        reg = get_registry(obs)
        if not reg.enabled:
            return
        stats = self.stats()
        for name in (
            "ingested_events",
            "ingested_batches",
            "selections",
            "rejects",
            "evictions",
            "evicted_bytes",
            "readmissions",
            "tenants_opened",
            "tenants_closed",
        ):
            reg.counter(name).inc(int(stats[name]))
        reg.gauge("resident_tenants").set(stats["resident_tenants"])
        reg.gauge("state_bytes").set(stats["state_bytes"])
        timer = reg.timer("apply")
        timer.total_seconds += stats["apply_seconds"]
        timer.count += int(stats["ingested_batches"])
