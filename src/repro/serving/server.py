"""The multi-tenant online hot-path prediction server.

:class:`PredictionServer` accepts columnar event batches (either
:class:`~repro.trace.batch.EventBatch` objects or their wire encoding)
from many concurrent tenants and answers each ingest with the
:class:`~repro.serving.session.HotPathSelection` records that batch
triggered.  One tenant is one running program; its predictor state is a
private :class:`~repro.serving.session.TenantSession`.

Concurrency model
-----------------
Tenants are hashed onto a fixed set of *shards*.  Each shard has two
locks with distinct jobs:

* an **admission condition** guarding the shard's bookkeeping (tenant
  map, queue depths, LRU clock).  Admission is cheap and never blocks
  on predictor work, so backpressure decisions stay responsive while
  batches are being applied;
* a **state lock** held while applying a batch to any session in the
  shard — the per-shard predictor-state lock of the design.

A per-tenant *turnstile* (monotonic ticket/turn counters under the
admission condition) serializes one tenant's batches in admission
order, so a tenant's stream is applied strictly in sequence even when
several transport threads carry it.

Backpressure
------------
Each tenant's ingest queue — events admitted but not yet applied — is
bounded.  A batch that would overflow it is *rejected* with
:class:`~repro.errors.BackpressureError` carrying a retry-after hint;
the server never buffers unboundedly on behalf of a slow consumer.

Memory budget
-------------
Sessions meter their predictor-state bytes (head counters, interned
paths, segment memo).  When a shard's share of the configured budget is
exceeded, idle tenants are evicted in LRU order: their session is
dropped (the counters are exactly the cheap, reconstructible state the
paper's Table 2 argues NET keeps small) and a later batch readmits them
with a fresh session that re-warms.  Tenants with queued or in-flight
work are never evicted.  With durability enabled, eviction checkpoints
the victim first, so readmission restores the session losslessly
instead of re-warming.

Durability
----------
With a ``state_dir``, the server keeps a per-shard
:class:`~repro.serving.durability.DurabilityStore`: tenant sessions are
snapshotted every ``checkpoint_interval_batches`` applied batches (and
at eviction and drain), and every applied batch's content digest is
logged to a CRC-framed WAL keyed by the tenant's **sequence number**.
Sequence numbers make ingest exactly-once: a duplicate (``seq`` already
applied) is acked without effect after its digest is verified against
the log, a gap (``seq`` ahead of the stream) is rejected with
:class:`~repro.errors.SequenceError`, and after
:meth:`PredictionServer.restore` a client re-sending the batches past
the last snapshot has them re-applied — verified byte-identical to the
originals — rebuilding exactly the pre-crash state.  :meth:`drain`
stops admissions (:class:`~repro.errors.DrainingError`), waits out
in-flight work, checkpoints every resident tenant and fsyncs, enabling
a rolling restart where the successor ``restore()``s and tenants
continue mid-stream.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.cfg.program import Program
from repro.errors import (
    BackpressureError,
    CheckpointError,
    DrainingError,
    SequenceError,
    ServingError,
)
from repro.obs.core import Registry, get_registry
from repro.prediction.base import PredictionOutcome
from repro.serving.durability import DurabilityStore
from repro.serving.session import HotPathSelection, TenantSession
from repro.serving.wire import batch_digest, decode_batch
from repro.trace.batch import EventBatch


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of one :class:`PredictionServer`.

    Attributes
    ----------
    num_shards:
        Number of independent shards tenants are hashed onto.
    delay:
        NET prediction delay τ applied to every tenant.
    max_blocks:
        Per-path block cap handed to each tenant's extractor.
    max_queued_events:
        Per-tenant ingest-queue bound, in events (admitted but not yet
        applied).  Ingests beyond it are rejected with backpressure.
    memory_budget_bytes:
        Server-wide predictor-state budget; each shard enforces its
        ``1/num_shards`` share.  ``None`` disables eviction.
    retry_after_seconds:
        Base retry-after hint attached to backpressure rejections.
    count_backward_arrivals_only:
        Forwarded to every tenant's NET session (Dynamo counts only
        backward arrivals; see :class:`~repro.prediction.net.NETPredictor`).
    checkpoint_interval_batches:
        With durability enabled, snapshot a tenant's session every this
        many applied batches (eviction and drain snapshot regardless).
    wal_rotate_records:
        Rotate a shard's WAL (dropping records covered by snapshots)
        once it holds more than this many records.
    """

    num_shards: int = 8
    delay: int = 50
    max_blocks: int | None = 256
    max_queued_events: int = 1 << 16
    memory_budget_bytes: int | None = None
    retry_after_seconds: float = 0.05
    count_backward_arrivals_only: bool = True
    checkpoint_interval_batches: int = 64
    wal_rotate_records: int = 8192

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ServingError("num_shards must be positive")
        if self.delay < 0:
            raise ServingError("delay must be non-negative")
        if self.max_queued_events < 1:
            raise ServingError("max_queued_events must be positive")
        if (
            self.memory_budget_bytes is not None
            and self.memory_budget_bytes < 1
        ):
            raise ServingError("memory_budget_bytes must be positive")
        if self.retry_after_seconds <= 0:
            raise ServingError("retry_after_seconds must be positive")
        if self.checkpoint_interval_batches < 1:
            raise ServingError(
                "checkpoint_interval_batches must be positive"
            )
        if self.wal_rotate_records < 1:
            raise ServingError("wal_rotate_records must be positive")


@dataclass(frozen=True)
class IngestResult:
    """Reply to one accepted ingest.

    ``duplicate`` marks a batch acked *without effect*: its sequence
    number was already applied, so the server verified the payload
    digest against its log and returned success with no selections —
    the safe-retry half of exactly-once ingest.
    """

    tenant_id: str
    seq: int
    events: int
    selections: tuple[HotPathSelection, ...]
    duplicate: bool = False


@dataclass(frozen=True)
class TenantReport:
    """Final record returned when a tenant's stream is closed."""

    tenant_id: str
    selections: tuple[HotPathSelection, ...]
    outcome: PredictionOutcome
    events_ingested: int
    batches_ingested: int
    flow: int
    num_paths: int
    counter_space: int
    state_bytes: int
    evictions: int


@dataclass
class _Tenant:
    tenant_id: str
    program: Program
    program_name: str | None = None
    session: TenantSession | None = None
    queued_events: int = 0
    next_seq: int = 0
    turn: int = 0
    last_used: int = 0
    closed: bool = False
    poisoned: bool = False
    had_session: bool = False
    resume_uid: int | None = None
    evictions: int = 0
    events_ingested: int = 0
    batches_ingested: int = 0
    # Durability bookkeeping (unused without a state dir).
    durable_seq: int = -1
    last_snapshot_seq: int = -1
    batches_since_snapshot: int = 0
    digests: dict[int, int] = field(default_factory=dict)
    parked_snapshot: dict | None = None
    unaccounted_bytes: int = 0
    open_logged: bool = False


#: In-memory digest retention per tenant when durability is off (the
#: window within which a retried duplicate can still be verified).
_DIGEST_RETENTION = 1024


class _Shard:
    __slots__ = (
        "index",
        "cond",
        "state_lock",
        "tenants",
        "clock",
        "state_bytes",
        "stats",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.cond = threading.Condition()
        self.state_lock = threading.Lock()
        self.tenants: dict[str, _Tenant] = {}
        self.clock = 0
        self.state_bytes = 0
        self.stats = {
            "ingested_events": 0,
            "ingested_batches": 0,
            "selections": 0,
            "rejects": 0,
            "evictions": 0,
            "evicted_bytes": 0,
            "readmissions": 0,
            "tenants_opened": 0,
            "tenants_closed": 0,
            "checkpoints": 0,
            "restores": 0,
            "replayed": 0,
            "dropped": 0,
            "apply_seconds": 0.0,
        }


class PredictionServer:
    """Sharded, thread-safe, long-running NET prediction service.

    ``admit_hook``/``apply_hook`` are deterministic-test instrumentation
    points: ``admit_hook(tenant_id, seq)`` fires after a batch passes
    admission (before it waits its turn), ``apply_hook(tenant_id, batch)``
    fires under the shard state lock immediately before the batch is
    applied.  Production servers leave both unset.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        admit_hook: Callable[[str, int], None] | None = None,
        apply_hook: Callable[[str, EventBatch], None] | None = None,
        state_dir: str | None = None,
    ):
        self.config = config if config is not None else ServerConfig()
        self._shards = [
            _Shard(index) for index in range(self.config.num_shards)
        ]
        self._admit_hook = admit_hook
        self._apply_hook = apply_hook
        self._draining = False
        self._store = (
            DurabilityStore(state_dir, self.config.num_shards)
            if state_dir is not None
            else None
        )

    @classmethod
    def restore(
        cls,
        state_dir: str,
        programs: dict[str, Program],
        config: ServerConfig | None = None,
        admit_hook: Callable[[str, int], None] | None = None,
        apply_hook: Callable[[str, EventBatch], None] | None = None,
    ) -> "PredictionServer":
        """Rebuild a server from ``state_dir`` after a crash or drain.

        Every tenant found in the store is re-registered at its last
        snapshot: its next expected sequence number rewinds to the
        snapshot (clients learn it via ``expected_seq`` and re-send
        from there), and the WAL's digest log verifies the re-sent
        batches are byte-identical to the ones originally applied.
        Sessions themselves are rebuilt lazily on first ingest.
        ``programs`` maps registered program names to programs; a
        recovered tenant naming an unknown program is an error.
        """
        server = cls(
            config,
            admit_hook=admit_hook,
            apply_hook=apply_hook,
            state_dir=state_dir,
        )
        for shard, tenants in zip(
            server._shards, server._store.recover()
        ):
            for tenant_id, entry in tenants.items():
                if entry.program_name is None:
                    raise CheckpointError(
                        f"recovered tenant {tenant_id!r} has no "
                        "program name in the store"
                    )
                program = programs.get(entry.program_name)
                if program is None:
                    raise CheckpointError(
                        f"recovered tenant {tenant_id!r} references "
                        f"program {entry.program_name!r}, which is not "
                        "in the registry"
                    )
                tenant = _Tenant(
                    tenant_id=tenant_id,
                    program=program,
                    program_name=entry.program_name,
                )
                tenant.next_seq = entry.snapshot_seq + 1
                tenant.turn = tenant.next_seq
                tenant.durable_seq = entry.durable_seq
                tenant.last_snapshot_seq = entry.snapshot_seq
                tenant.digests = dict(entry.digests)
                tenant.parked_snapshot = entry.snapshot
                tenant.had_session = entry.snapshot is not None
                if entry.snapshot is not None:
                    # The tenant-level totals (what TenantReport cites)
                    # resume from the snapshot; replayed batches past it
                    # re-increment exactly as the originals did.
                    tenant.events_ingested = int(
                        entry.snapshot["events_ingested"]
                    )
                    tenant.batches_ingested = int(
                        entry.snapshot["batches_ingested"]
                    )
                tenant.open_logged = True
                shard.tenants[tenant_id] = tenant
                shard.stats["tenants_opened"] += 1
        return server

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has begun (admissions are rejected)."""
        return self._draining

    @property
    def durable(self) -> bool:
        """Whether the server persists checkpoints to a state dir."""
        return self._store is not None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_index(self, tenant_id: str) -> int:
        """The shard ``tenant_id`` is routed to (stable across runs)."""
        return zlib.crc32(tenant_id.encode("utf-8")) % len(self._shards)

    def _shard(self, tenant_id: str) -> _Shard:
        return self._shards[self.shard_index(tenant_id)]

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------
    def open_tenant(
        self,
        tenant_id: str,
        program: Program,
        program_name: str | None = None,
    ) -> None:
        """Register ``tenant_id`` with its program ahead of ingesting.

        Optional — ``ingest`` with ``program=`` performs the same
        registration on first contact.  ``program_name`` is the
        registry name checkpoints record so a restored server can
        re-associate the tenant with its program; required (here or at
        first ingest) when durability is enabled.
        """
        shard = self._shard(tenant_id)
        with shard.cond:
            self._admit_tenant(shard, tenant_id, program, program_name)

    def _admit_tenant(
        self,
        shard: _Shard,
        tenant_id: str,
        program: Program | None,
        program_name: str | None = None,
    ) -> _Tenant:
        if self._draining:
            raise DrainingError(self.config.retry_after_seconds)
        tenant = shard.tenants.get(tenant_id)
        if tenant is None:
            if program is None:
                raise ServingError(
                    f"unknown tenant {tenant_id!r}; open it first (or "
                    "pass its program with the first ingest)"
                )
            if self._store is not None and program_name is None:
                raise ServingError(
                    f"tenant {tenant_id!r} needs a program_name when "
                    "durability is enabled (checkpoints record the "
                    "registry name, not the program itself)"
                )
            tenant = _Tenant(
                tenant_id=tenant_id,
                program=program,
                program_name=program_name,
            )
            shard.tenants[tenant_id] = tenant
            shard.stats["tenants_opened"] += 1
        if tenant.closed:
            raise ServingError(f"tenant {tenant_id!r} is closed")
        if tenant.poisoned:
            raise ServingError(
                f"tenant {tenant_id!r} stream is poisoned by an earlier "
                "ingest failure; close and reopen it"
            )
        if self._store is not None and not tenant.open_logged:
            # The open record is what lets a restore re-register a
            # tenant that crashed before its first snapshot.
            self._store.shards[self.shard_index(tenant_id)].append(
                {
                    "k": "open",
                    "t": tenant_id,
                    "p": tenant.program_name,
                }
            )
            tenant.open_logged = True
        return tenant

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        tenant_id: str,
        payload: EventBatch | bytes | bytearray | memoryview,
        program: Program | None = None,
        program_name: str | None = None,
        seq: int | None = None,
    ) -> IngestResult:
        """Apply one batch to ``tenant_id``'s stream.

        ``payload`` is either an in-process :class:`EventBatch` or its
        wire encoding (decoded before any lock is taken).  Returns the
        selections the batch triggered; raises
        :class:`~repro.errors.BackpressureError` when the tenant's
        ingest queue is full and a trace/serving error when the payload
        or stream is invalid.

        ``seq`` is the client-assigned sequence number driving
        exactly-once ingest.  ``None`` lets the server assign the next
        number (at-most-once from the client's point of view: a retried
        batch would be applied twice).  With an explicit ``seq``, a
        number already applied is acked without effect
        (``duplicate=True``) after its digest is verified, and a number
        ahead of the stream raises
        :class:`~repro.errors.SequenceError` — so a client may retry
        any batch blindly until it is acknowledged.
        """
        batch = (
            payload
            if isinstance(payload, EventBatch)
            else decode_batch(payload)
        )
        n = len(batch)
        shard = self._shard(tenant_id)
        config = self.config
        durable = self._store is not None
        # Hashed outside any lock; only needed when the batch can be
        # compared against history (explicit seq) or must enter it.
        digest = (
            batch_digest(batch)
            if durable or seq is not None
            else None
        )

        with shard.cond:
            tenant = self._admit_tenant(
                shard, tenant_id, program, program_name
            )
            if seq is None:
                seq = tenant.next_seq
            elif seq < tenant.next_seq:
                recorded = tenant.digests.get(seq)
                if recorded is not None and recorded != digest:
                    raise SequenceError(
                        tenant_id,
                        expected=tenant.next_seq,
                        got=seq,
                        reason="duplicate payload differs from the "
                        "batch originally applied under that seq",
                    )
                shard.stats["dropped"] += 1
                return IngestResult(
                    tenant_id=tenant_id,
                    seq=seq,
                    events=n,
                    selections=(),
                    duplicate=True,
                )
            elif seq > tenant.next_seq:
                raise SequenceError(
                    tenant_id,
                    expected=tenant.next_seq,
                    got=seq,
                    reason="gap",
                )
            replayed = seq <= tenant.durable_seq
            if replayed:
                recorded = tenant.digests.get(seq)
                if recorded is not None and recorded != digest:
                    raise SequenceError(
                        tenant_id,
                        expected=tenant.next_seq,
                        got=seq,
                        reason="re-sent batch differs from the batch "
                        "whose digest the log recorded",
                    )
            if tenant.queued_events + n > config.max_queued_events:
                shard.stats["rejects"] += 1
                raise BackpressureError(
                    tenant_id,
                    queued_events=tenant.queued_events,
                    capacity=config.max_queued_events,
                    retry_after_seconds=config.retry_after_seconds,
                )
            tenant.queued_events += n
            tenant.next_seq += 1
            if self._admit_hook is not None:
                self._admit_hook(tenant_id, seq)
            while tenant.turn != seq:
                shard.cond.wait()

        try:
            with shard.state_lock:
                session = self._resident_session(shard, tenant)
                if self._apply_hook is not None:
                    self._apply_hook(tenant_id, batch)
                before_bytes = session.state_bytes
                started = time.perf_counter()
                selections = session.ingest(batch)
                elapsed = time.perf_counter() - started
                delta_bytes = session.state_bytes - before_bytes
                if durable:
                    store_shard = self._store.shards[shard.index]
                    if tenant.digests.get(seq) != digest:
                        store_shard.append(
                            {
                                "k": "batch",
                                "t": tenant_id,
                                "s": seq,
                                "d": digest,
                            }
                        )
                    tenant.digests[seq] = digest
                    if seq > tenant.durable_seq:
                        tenant.durable_seq = seq
                    tenant.batches_since_snapshot += 1
                    if (
                        tenant.batches_since_snapshot
                        >= config.checkpoint_interval_batches
                    ):
                        self._checkpoint_tenant(
                            store_shard, shard, tenant, session, seq
                        )
                    if replayed:
                        shard.stats["replayed"] += 1
                elif digest is not None:
                    # Bounded in-memory digest window so explicit-seq
                    # retries stay verifiable without durability.
                    tenant.digests[seq] = digest
                    while len(tenant.digests) > _DIGEST_RETENTION:
                        tenant.digests.pop(next(iter(tenant.digests)))
        except Exception:
            with shard.cond:
                tenant.poisoned = True
                self._finish_turn(shard, tenant, n)
            raise

        with shard.cond:
            tenant.events_ingested += n
            tenant.batches_ingested += 1
            stats = shard.stats
            stats["ingested_events"] += n
            stats["ingested_batches"] += 1
            stats["selections"] += len(selections)
            stats["apply_seconds"] += elapsed
            shard.state_bytes += delta_bytes + tenant.unaccounted_bytes
            tenant.unaccounted_bytes = 0
            self._touch(shard, tenant)
            self._evict_over_budget(shard, keep=tenant)
            if (
                durable
                and self._store.shards[shard.index].record_count
                > config.wal_rotate_records
            ):
                # cond (tenant map stable) + state lock (digest maps
                # stable) make the live-record scan consistent.
                with shard.state_lock:
                    self._store.shards[shard.index].rotate(
                        self._store.live_records(
                            shard.index, shard.tenants
                        )
                    )
            self._finish_turn(shard, tenant, n)
        return IngestResult(
            tenant_id=tenant_id,
            seq=seq,
            events=n,
            selections=tuple(selections),
        )

    def _checkpoint_tenant(
        self,
        store_shard,
        shard: _Shard,
        tenant: _Tenant,
        session: TenantSession,
        seq: int,
    ) -> dict:
        """Snapshot ``tenant`` as of applied batch ``seq``.

        Caller holds the shard state lock (or the tenant is provably
        idle); the session must be at a batch boundary.  Returns the
        session-state dict that was persisted.
        """
        state = session.snapshot()
        payload = {
            "tenant_id": tenant.tenant_id,
            "program_name": tenant.program_name,
            "seq": seq,
            "session": state,
        }
        store_shard.write_snapshot(tenant.tenant_id, payload)
        tenant.last_snapshot_seq = seq
        tenant.batches_since_snapshot = 0
        # The WAL drops records the snapshot covers at rotation; in
        # memory a retention window outlives them so late duplicates
        # can still be verified against what was actually applied.
        horizon = seq - _DIGEST_RETENTION
        for stale in [s for s in tenant.digests if s <= horizon]:
            del tenant.digests[stale]
        shard.stats["checkpoints"] += 1
        return state

    def _finish_turn(self, shard: _Shard, tenant: _Tenant, n: int) -> None:
        tenant.queued_events -= n
        tenant.turn += 1
        shard.cond.notify_all()

    def _resident_session(
        self, shard: _Shard, tenant: _Tenant
    ) -> TenantSession:
        """The tenant's live session, recreated after an eviction.

        Called under the shard state lock; the session field is only
        ever assigned here and dropped by eviction (under the admission
        condition while the tenant is idle), so the turn-holder always
        sees a consistent value.
        """
        session = tenant.session
        if session is None:
            if tenant.parked_snapshot is not None:
                # Lossless path: a checkpoint (from eviction, drain or
                # recovery) rebuilds the session exactly where the
                # stream stood.  The restored bytes are invisible to
                # the shard's delta accounting until the next ingest
                # settles, hence ``unaccounted_bytes``.
                session = TenantSession.restore(
                    tenant.program, tenant.parked_snapshot
                )
                tenant.parked_snapshot = None
                tenant.unaccounted_bytes += session.state_bytes
                shard.stats["restores"] += 1
            else:
                session = TenantSession(
                    tenant_id=tenant.tenant_id,
                    program=tenant.program,
                    delay=self.config.delay,
                    max_blocks=self.config.max_blocks,
                    count_backward_arrivals_only=(
                        self.config.count_backward_arrivals_only
                    ),
                    start_uid=tenant.resume_uid,
                )
            tenant.session = session
            if tenant.had_session:
                shard.stats["readmissions"] += 1
            tenant.had_session = True
        return session

    def _touch(self, shard: _Shard, tenant: _Tenant) -> None:
        shard.clock += 1
        tenant.last_used = shard.clock

    def _evict_over_budget(
        self, shard: _Shard, keep: _Tenant | None = None
    ) -> None:
        """Drop idle LRU sessions until the shard is back under budget."""
        budget = self.config.memory_budget_bytes
        if budget is None:
            return
        shard_budget = max(1, budget // len(self._shards))
        while shard.state_bytes > shard_budget:
            victim: _Tenant | None = None
            for tenant in shard.tenants.values():
                if tenant is keep or tenant.session is None:
                    continue
                if tenant.queued_events or tenant.turn != tenant.next_seq:
                    continue  # queued or in-flight work: not evictable
                if victim is None or tenant.last_used < victim.last_used:
                    victim = tenant
            if victim is None:
                return  # nothing evictable; budget is soft under load
            freed = victim.session.state_bytes
            if self._store is not None:
                # Durable eviction is lossless: checkpoint the victim
                # and park the snapshot so readmission restores instead
                # of re-warming.  The victim is idle (no queued or
                # in-flight work), so its session is at a quiescent
                # batch boundary.
                with shard.state_lock:
                    victim.parked_snapshot = self._checkpoint_tenant(
                        self._store.shards[shard.index],
                        shard,
                        victim,
                        victim.session,
                        victim.next_seq - 1,
                    )
            else:
                # Remember where the stream stood so the fresh session
                # a readmission builds resumes mid-flight instead of
                # tripping the continuity check at the program entry.
                victim.resume_uid = victim.session.stream_position
            victim.session = None
            victim.evictions += 1
            shard.state_bytes -= freed
            shard.stats["evictions"] += 1
            shard.stats["evicted_bytes"] += freed

    # ------------------------------------------------------------------
    # Close
    # ------------------------------------------------------------------
    def close_tenant(self, tenant_id: str) -> TenantReport:
        """End ``tenant_id``'s stream and release its state.

        Takes a regular turnstile ticket, so every batch admitted
        before the close is applied first; ingests arriving after the
        close are rejected at admission.
        """
        shard = self._shard(tenant_id)
        with shard.cond:
            if self._draining:
                raise DrainingError(self.config.retry_after_seconds)
            tenant = shard.tenants.get(tenant_id)
            if tenant is None:
                raise ServingError(f"unknown tenant {tenant_id!r}")
            if tenant.closed:
                raise ServingError(f"tenant {tenant_id!r} is closed")
            tenant.closed = True  # admission now rejects new ingests
            seq = tenant.next_seq
            tenant.next_seq += 1
            while tenant.turn != seq:
                shard.cond.wait()

        with shard.state_lock:
            session = self._resident_session(shard, tenant)
            # The shard's accounting has seen exactly the deltas of the
            # applied batches; the final flush below grows the session
            # past that, so remember what to release *before* closing.
            tracked_bytes = session.state_bytes
            selections = session.close()
            if self._store is not None:
                # The close record retires the tenant from recovery;
                # fsync before dropping the snapshot so a crash between
                # the two heals toward "closed", never "rewound".
                store_shard = self._store.shards[shard.index]
                store_shard.append(
                    {"k": "close", "t": tenant_id}, sync=True
                )
                store_shard.delete_snapshot(tenant_id)

        with shard.cond:
            del shard.tenants[tenant_id]
            # A session restored from a checkpoint carries bytes the
            # shard's delta accounting never saw; release only what it
            # tracked.
            shard.state_bytes -= tracked_bytes - tenant.unaccounted_bytes
            shard.stats["tenants_closed"] += 1
            shard.stats["selections"] += len(selections)
            tenant.turn += 1
            shard.cond.notify_all()
        return TenantReport(
            tenant_id=tenant_id,
            selections=tuple(selections),
            outcome=session.outcome(),
            events_ingested=tenant.events_ingested,
            batches_ingested=tenant.batches_ingested,
            flow=session.flow,
            num_paths=session.num_paths,
            counter_space=session.counter_space,
            state_bytes=session.state_bytes,
            evictions=tenant.evictions,
        )

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> None:
        """Stop admissions, finish in-flight work, checkpoint everyone.

        After ``drain`` returns, every admitted batch has been applied,
        every tenant holding live state has a fresh durable snapshot
        (when durability is enabled) and the WALs are fsynced — a
        successor process can :meth:`restore` from the state dir and
        tenants continue mid-stream with no batch re-sent.  New
        admissions (ingest, open, close) raise
        :class:`~repro.errors.DrainingError` carrying a retry-after
        hint the moment the drain begins.  Raises
        :class:`~repro.errors.ServingError` if in-flight work does not
        settle within ``timeout`` seconds (the drain stays in effect).
        """
        self._draining = True
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        for shard in self._shards:
            with shard.cond:
                while any(
                    tenant.turn != tenant.next_seq
                    for tenant in shard.tenants.values()
                ):
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise ServingError(
                                "drain timed out with batches still "
                                "in flight"
                            )
                    shard.cond.wait(remaining)
                if self._store is None:
                    continue
                store_shard = self._store.shards[shard.index]
                with shard.state_lock:
                    for tenant in shard.tenants.values():
                        # Parked or never-started state is already
                        # durable; only live sessions need a snapshot.
                        if tenant.session is None or tenant.closed:
                            continue
                        self._checkpoint_tenant(
                            store_shard,
                            shard,
                            tenant,
                            tenant.session,
                            tenant.next_seq - 1,
                        )
                store_shard.sync()

    def close(self) -> None:
        """Release the durability store's file handles (idempotent).

        Simulated crashes in tests abandon a server instance and
        restore a successor over the same state dir; closing first
        keeps the handle count bounded.  Does **not** drain or
        checkpoint — state on disk stays exactly as it was.
        """
        if self._store is not None:
            self._store.close()

    def expected_seq(self, tenant_id: str) -> int:
        """The next sequence number the server will accept for a tenant.

        The recovery handshake: after a reconnect (or a server
        restart), a client asks where the stream stands and re-sends
        from there.  Unknown tenants report ``0`` — nothing of theirs
        survives, so the stream starts over.
        """
        shard = self._shard(tenant_id)
        with shard.cond:
            tenant = shard.tenants.get(tenant_id)
            return tenant.next_seq if tenant is not None else 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def tenant_queue_depth(self, tenant_id: str) -> int:
        """Events admitted but not yet applied for ``tenant_id``."""
        shard = self._shard(tenant_id)
        with shard.cond:
            tenant = shard.tenants.get(tenant_id)
            return tenant.queued_events if tenant is not None else 0

    def resident_tenants(self) -> int:
        """Tenants currently holding live predictor state."""
        total = 0
        for shard in self._shards:
            with shard.cond:
                total += sum(
                    1
                    for tenant in shard.tenants.values()
                    if tenant.session is not None
                )
        return total

    def state_bytes(self) -> int:
        """Metered predictor-state bytes across all shards."""
        total = 0
        for shard in self._shards:
            with shard.cond:
                total += shard.state_bytes
        return total

    def stats(self) -> dict:
        """Aggregated server statistics as a plain dict."""
        totals: dict[str, float] = {}
        for shard in self._shards:
            with shard.cond:
                for key, value in shard.stats.items():
                    totals[key] = totals.get(key, 0) + value
        totals["resident_tenants"] = self.resident_tenants()
        totals["state_bytes"] = self.state_bytes()
        if self._store is not None:
            totals.update(self._store.stats())
        return totals

    def publish(self, obs: Registry | None) -> None:
        """Fold the server's statistics into an obs registry (once, at
        the end of a run): counters under their stat names, the current
        residency and state bytes as gauges, apply time as a timer."""
        reg = get_registry(obs)
        if not reg.enabled:
            return
        stats = self.stats()
        for name in (
            "ingested_events",
            "ingested_batches",
            "selections",
            "rejects",
            "evictions",
            "evicted_bytes",
            "readmissions",
            "tenants_opened",
            "tenants_closed",
            "checkpoints",
            "restores",
            "replayed",
            "dropped",
        ):
            reg.counter(name).inc(int(stats[name]))
        reg.gauge("resident_tenants").set(stats["resident_tenants"])
        reg.gauge("state_bytes").set(stats["state_bytes"])
        timer = reg.timer("apply")
        timer.total_seconds += stats["apply_seconds"]
        timer.count += int(stats["ingested_batches"])
