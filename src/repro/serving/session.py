"""Per-tenant state: one live extraction + NET prediction pipeline.

A *tenant* is one running program streaming its branch events to the
server.  The session glues the two streaming layers together — a
:class:`~repro.trace.extractor.PathStream` segmenting the tenant's
event batches into path occurrences, and a
:class:`~repro.prediction.streaming.NETSession` watching those
occurrences for hot heads — and surfaces each first post-hot execution
as a :class:`HotPathSelection` carrying the selected fragment (the
path's block list), which is the server's response payload.

Isolation is by construction: a session owns its extractor (and thus
its path table, ids and segment memo) outright, shares no mutable state
with any other session, and is only ever driven by one thread at a time
(the server's per-tenant turnstile guarantees that).  The serving
property suite turns this into a theorem-by-test: any interleaving of
tenants' batches yields per-tenant selections byte-identical to each
tenant running alone.

The session also meters its own memory: :attr:`state_bytes` is a
deterministic estimate of the predictor-state footprint (head counters,
interned paths, segment memo), maintained incrementally so the server's
fleet-scale budget enforcement (the Table 2 counter-space story) costs
O(1) per batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.program import Program
from repro.errors import CheckpointError, ServingError
from repro.prediction.base import PredictionOutcome
from repro.prediction.streaming import NETSession
from repro.trace.batch import EventBatch
from repro.trace.extractor import PathExtractor
from repro.trace.path import Path, PathSignature

#: Estimated bytes per allocated head counter (dict slot + two ints).
COUNTER_BYTES = 96

#: Estimated fixed bytes per distinct interned path: the Path object,
#: its signature, its table slot and its segment-memo key.
PATH_BYTES = 360

#: Estimated bytes per block reference inside an interned path (the
#: blocks tuple entry plus the memo key's column bytes).
BLOCK_BYTES = 24


@dataclass(frozen=True, slots=True)
class HotPathSelection:
    """One hot-path selection announced to a tenant.

    Attributes
    ----------
    tenant_id:
        The tenant the selection belongs to.
    path_id:
        The selected path's id in the tenant's private table.
    time:
        Occurrence index (within the tenant's stream) of the selection
        moment — the paper's prediction time.
    head_uid:
        The hot head the tail executed from.
    blocks:
        The selected fragment: the path's block uids in order, ready
        for fragment construction.
    num_instructions:
        Static instruction count of the fragment.
    """

    tenant_id: str
    path_id: int
    time: int
    head_uid: int
    blocks: tuple[int, ...]
    num_instructions: int


class TenantSession:
    """The full online pipeline for one tenant's stream."""

    __slots__ = (
        "tenant_id",
        "_extractor",
        "_stream",
        "_net",
        "_known_paths",
        "_start_uids",
        "_ends_backward",
        "_num_blocks",
        "events_ingested",
        "batches_ingested",
        "state_bytes",
        "closed",
    )

    def __init__(
        self,
        tenant_id: str,
        program: Program,
        delay: int,
        max_blocks: int | None = 256,
        count_backward_arrivals_only: bool = True,
        start_uid: int | None = None,
    ):
        self.tenant_id = tenant_id
        self._extractor = PathExtractor(program, max_blocks=max_blocks)
        # ``start_uid`` resumes a stream mid-flight (a re-admitted
        # tenant whose previous session was evicted at that block).
        self._stream = self._extractor.stream(start_uid=start_uid)
        self._net = NETSession(
            delay,
            count_backward_arrivals_only=count_backward_arrivals_only,
        )
        self._known_paths = 0
        # Per-path static attributes, appended as the table grows, so
        # the per-occurrence hot loop never touches Path objects.
        self._start_uids: list[int] = []
        self._ends_backward: list[bool] = []
        self._num_blocks: list[int] = []
        self.events_ingested = 0
        self.batches_ingested = 0
        self.state_bytes = 0
        self.closed = False

    # ------------------------------------------------------------------
    def ingest(self, batch: EventBatch) -> list[HotPathSelection]:
        """Feed one batch; return the selections it triggered."""
        if self.closed:
            raise ServingError(
                f"tenant {self.tenant_id!r} session is closed"
            )
        self.events_ingested += len(batch)
        self.batches_ingested += 1
        return self._observe(self._stream.feed(batch))

    def close(self) -> list[HotPathSelection]:
        """End the stream; return selections from the final segment."""
        if self.closed:
            raise ServingError(
                f"tenant {self.tenant_id!r} session is closed"
            )
        selections = self._observe(self._stream.finish())
        self.closed = True
        return selections

    # ------------------------------------------------------------------
    def _observe(self, path_ids: list[int]) -> list[HotPathSelection]:
        net = self._net
        table = self._extractor.table
        start_uids = self._start_uids
        ends_backward = self._ends_backward
        num_blocks = self._num_blocks
        selections: list[HotPathSelection] = []
        for path_id in path_ids:
            while self._known_paths < len(table):
                path = table.path(self._known_paths)
                start_uids.append(path.start_uid)
                ends_backward.append(path.ends_with_backward_branch)
                num_blocks.append(path.num_blocks)
                self.state_bytes += (
                    PATH_BYTES + BLOCK_BYTES * path.num_blocks
                )
                self._known_paths += 1
            head_uid = start_uids[path_id]
            before = net.counter_space
            if net.observe(
                path_id,
                head_uid,
                ends_backward[path_id],
                num_blocks[path_id],
            ):
                path = table.path(path_id)
                selections.append(
                    HotPathSelection(
                        tenant_id=self.tenant_id,
                        path_id=path_id,
                        time=net.flow - 1,
                        head_uid=head_uid,
                        blocks=path.blocks,
                        num_instructions=path.num_instructions,
                    )
                )
            if net.counter_space != before:
                self.state_bytes += COUNTER_BYTES
        return selections

    # ------------------------------------------------------------------
    # Durable state (serving checkpoints)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The session's complete state as plain JSON-able data.

        Captures the three mutable layers — the interned path table (in
        discovery order, so restored ids keep their meaning), the
        extraction stream's cursor (including the open segment's carried
        events), and the NET predictor state — plus the session's own
        bookkeeping.  :meth:`restore` rebuilds a session that continues
        the stream byte-identically: same selections, same times, same
        counter space, same metered bytes.  Only valid at a batch
        boundary (between :meth:`ingest` calls), which is when the
        server's turnstile guarantees the state is quiescent.
        """
        if self.closed:
            raise ServingError(
                f"tenant {self.tenant_id!r} session is closed"
            )
        table = self._extractor.table
        paths = []
        for path_id in range(len(table)):
            path = table.path(path_id)
            sig = path.signature
            paths.append(
                [
                    list(path.blocks),
                    sig.start_address,
                    sig.history,
                    sig.bit_count,
                    list(sig.indirect_targets),
                    path.num_instructions,
                    path.num_cond_branches,
                    path.num_indirect_branches,
                    bool(path.ends_with_backward_branch),
                ]
            )
        return {
            "tenant_id": self.tenant_id,
            "delay": self._net.delay,
            "max_blocks": self._extractor._max_blocks,
            "count_backward_arrivals_only": (
                self._net.count_backward_arrivals_only
            ),
            "paths": paths,
            "stream": self._stream.checkpoint(),
            "net": self._net.state_dict(),
            "events_ingested": self.events_ingested,
            "batches_ingested": self.batches_ingested,
            "state_bytes": self.state_bytes,
        }

    @classmethod
    def restore(cls, program: Program, state: dict) -> "TenantSession":
        """Rebuild a session from a :meth:`snapshot` payload.

        ``program`` must be the program the snapshotted session was
        serving (tenant programs are registered by name and do not
        travel through checkpoints).
        """
        try:
            session = cls(
                tenant_id=state["tenant_id"],
                program=program,
                delay=int(state["delay"]),
                max_blocks=state["max_blocks"],
                count_backward_arrivals_only=bool(
                    state["count_backward_arrivals_only"]
                ),
            )
            table = session._extractor.table
            for record in state["paths"]:
                (
                    blocks,
                    start_address,
                    history,
                    bit_count,
                    indirect,
                    num_instructions,
                    num_cond,
                    num_indirect,
                    ends_backward,
                ) = record
                path = Path(
                    signature=PathSignature(
                        start_address=int(start_address),
                        history=int(history),
                        bit_count=int(bit_count),
                        indirect_targets=tuple(
                            int(t) for t in indirect
                        ),
                    ),
                    blocks=tuple(int(b) for b in blocks),
                    start_uid=int(blocks[0]),
                    num_instructions=int(num_instructions),
                    num_cond_branches=int(num_cond),
                    num_indirect_branches=int(num_indirect),
                    ends_with_backward_branch=bool(ends_backward),
                )
                table.intern(path)
            # Re-register the per-path static attribute columns the hot
            # loop reads, exactly as _observe would have grown them.
            for path_id in range(len(table)):
                path = table.path(path_id)
                session._start_uids.append(path.start_uid)
                session._ends_backward.append(
                    path.ends_with_backward_branch
                )
                session._num_blocks.append(path.num_blocks)
            session._known_paths = len(table)
            session._stream = session._extractor.resume_stream(
                state["stream"]
            )
            session._net.load_state(state["net"])
            session.events_ingested = int(state["events_ingested"])
            session.batches_ingested = int(state["batches_ingested"])
            session.state_bytes = int(state["state_bytes"])
        except (KeyError, IndexError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"invalid session snapshot: {error!r}"
            ) from error
        return session

    # ------------------------------------------------------------------
    @property
    def flow(self) -> int:
        """Path occurrences observed so far."""
        return self._net.flow

    @property
    def num_paths(self) -> int:
        """Distinct paths interned so far."""
        return len(self._extractor.table)

    @property
    def num_predictions(self) -> int:
        """Selections announced so far."""
        return self._net.num_predictions

    @property
    def counter_space(self) -> int:
        """Head counters allocated so far."""
        return self._net.counter_space

    @property
    def stream_position(self) -> int:
        """Block uid the event stream is at (resume point on eviction)."""
        return self._stream.position

    def outcome(self) -> PredictionOutcome:
        """The tenant's cumulative outcome (see :meth:`NETSession.outcome`)."""
        return self._net.outcome()
