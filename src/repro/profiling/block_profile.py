"""Basic-block profiling baseline.

Counts block entries.  The paper notes (§4.2) that NET "requires even
less profiling than block or branch profiling schemes" — this baseline
makes that comparison concrete: block profiling bumps a counter at every
block entry, NET only at backward-taken-branch targets.
"""

from __future__ import annotations

import numpy as np

from repro.profiling.base import Profiler, ProfileReport
from repro.profiling.counters import CounterTable
from repro.trace.batch import EventBatch
from repro.trace.events import HALT_DST, BranchEvent


class BlockProfiler(Profiler):
    """Counts basic-block entries (the destination of every transfer)."""

    name = "block"

    def __init__(self, entry_uid: int | None = None):
        self._counters = CounterTable("blocks")
        if entry_uid is not None:
            # The entry block is entered once without a branch event.
            self._counters.bump(entry_uid)

    def observe(self, event: BranchEvent) -> None:
        if event.dst == HALT_DST:
            return
        self._counters.bump(event.dst)

    def observe_batch(self, batch: EventBatch) -> None:
        """Vectorized: count distinct destinations in one pass."""
        dst = batch.dst[batch.dst != HALT_DST]
        if not len(dst):
            return
        uids, counts = np.unique(dst, return_counts=True)
        self._counters.bump_many(uids.tolist(), counts.tolist())

    def report(self) -> ProfileReport:
        return ProfileReport(
            scheme=self.name,
            frequencies={key: count for key, count in self._counters.items()},
            counter_space=self._counters.high_water,
            profiling_ops=self._counters.updates,
        )
