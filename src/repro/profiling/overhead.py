"""Side-by-side overhead comparison of the profiling schemes.

Paper §4 argues that path-profile based prediction's runtime overhead
(counter space + per-branch profiling operations) is what disqualifies it
online.  :func:`compare_schemes` runs every profiler over one event
stream and tabulates the two cost figures, plus a NET-style head-only
counter for reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfg.program import Program
from repro.profiling.ball_larus import BallLarusProfiler
from repro.profiling.base import Profiler, ProfileReport
from repro.profiling.bit_tracing import BitTracingProfiler
from repro.profiling.block_profile import BlockProfiler
from repro.profiling.counters import CounterTable
from repro.profiling.edge_profile import EdgeProfiler
from repro.profiling.kpaths import KBoundedPathProfiler
from repro.trace.batch import EventBatch
from repro.trace.events import BranchEvent


@dataclass(frozen=True)
class OverheadRow:
    """One scheme's cost figures on one event stream."""

    scheme: str
    counter_space: int
    profiling_ops: int
    num_units: int

    def render(self) -> str:
        """One-line report form."""
        return (
            f"{self.scheme:>12s}: counters={self.counter_space:>8,} "
            f"ops={self.profiling_ops:>10,} units={self.num_units:>8,}"
        )


class HeadCounterProfiler(Profiler):
    """NET's profiling component alone: counters at backward-branch targets."""

    name = "net-heads"

    def __init__(self) -> None:
        self._counters = CounterTable("heads")

    def observe(self, event: BranchEvent) -> None:
        if event.backward:
            self._counters.bump(event.dst)

    def observe_batch(self, batch: EventBatch) -> None:
        """Vectorized: count distinct backward-branch targets."""
        heads = batch.dst[batch.backward]
        if not len(heads):
            return
        uids, counts = np.unique(heads, return_counts=True)
        self._counters.bump_many(uids.tolist(), counts.tolist())

    def report(self) -> ProfileReport:
        return ProfileReport(
            scheme=self.name,
            frequencies={key: count for key, count in self._counters.items()},
            counter_space=self._counters.high_water,
            profiling_ops=self._counters.updates,
        )


def compare_schemes(
    program: Program,
    events: list[BranchEvent] | EventBatch | list[EventBatch],
    k: int = 8,
) -> list[OverheadRow]:
    """Run every profiling scheme over ``events`` and tabulate costs.

    ``events`` must be materialized (a list of events, one columnar
    :class:`~repro.trace.batch.EventBatch`, or a list of batches)
    because each profiler consumes the stream once.  The rows are
    exactly equal whichever representation carries the stream; the
    columnar forms run the profilers' vectorized batch paths.
    """
    profilers = [
        BitTracingProfiler(program),
        BallLarusProfiler(program),
        KBoundedPathProfiler(k=k),
        EdgeProfiler(),
        BlockProfiler(entry_uid=program.entry_block.uid),
        HeadCounterProfiler(),
    ]
    rows = []
    for profiler in profilers:
        report = profiler.run(events)
        rows.append(
            OverheadRow(
                scheme=report.scheme,
                counter_space=report.counter_space,
                profiling_ops=report.profiling_ops,
                num_units=report.num_units,
            )
        )
    return rows
