"""Path profiling schemes (paper §2) and baselines.

* :class:`BitTracingProfiler` — on-the-fly path signatures;
* :class:`BallLarusProfiler` — spanning-tree instrumented path numbering;
* :class:`KBoundedPathProfiler` — Young–Smith k-bounded general paths;
* :class:`EdgeProfiler` / :class:`BlockProfiler` — classic baselines;
* :func:`compare_schemes` — the §4 overhead comparison.
"""

from repro.profiling.ball_larus import BallLarusProfiler
from repro.profiling.base import Profiler, ProfileReport
from repro.profiling.bit_tracing import BitTracingProfiler
from repro.profiling.block_profile import BlockProfiler
from repro.profiling.counters import CounterTable
from repro.profiling.edge_profile import EdgeProfiler
from repro.profiling.kpaths import KBoundedPathProfiler
from repro.profiling.overhead import (
    HeadCounterProfiler,
    OverheadRow,
    compare_schemes,
)

__all__ = [
    "BallLarusProfiler",
    "BitTracingProfiler",
    "BlockProfiler",
    "CounterTable",
    "EdgeProfiler",
    "HeadCounterProfiler",
    "KBoundedPathProfiler",
    "OverheadRow",
    "ProfileReport",
    "Profiler",
    "compare_schemes",
]
