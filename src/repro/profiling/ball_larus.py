"""Ball–Larus runtime path profiling (paper §2).

Uses the static numbering and spanning-tree instrumentation plan from
:mod:`repro.cfg.spanning_tree` to profile *intraprocedural acyclic forward
paths* at run time the way an instrumented binary would: a per-activation
register ``r`` starts at 0, every traversed *chord* edge adds its
increment, and reaching the procedure's path end bumps ``count[r]``.

The profiler demonstrates the scheme's offline strengths and online costs:
increments only on chord edges (fewer dynamic operations than bit
tracing), but a preparatory static analysis and a counter space bounded by
the *static* path count, which can be exponential in the procedure size.
"""

from __future__ import annotations

from repro.cfg.block import BranchKind
from repro.cfg.program import Program
from repro.cfg.spanning_tree import BallLarusNumbering, number_program
from repro.profiling.base import Profiler, ProfileReport
from repro.profiling.counters import CounterTable
from repro.trace.events import HALT_DST, BranchEvent


class BallLarusProfiler(Profiler):
    """Runtime profiler over the Ball–Larus instrumentation plan.

    Keys of the resulting frequency map are ``(procedure_name, path_id)``
    pairs; :meth:`decode` recovers the block sequence of any profiled
    path.
    """

    name = "ball-larus"

    def __init__(self, program: Program):
        self._program = program
        self._numberings: dict[str, BallLarusNumbering] = number_program(
            program
        )
        # chord increment lookup per procedure: (src, dst) -> increment.
        self._chords: dict[str, dict[tuple[int, int], int]] = {}
        for name, numbering in self._numberings.items():
            chords = {}
            chord_set = set(numbering.chord_indices)
            for edge in numbering.edges:
                if edge.index in chord_set:
                    chords[(edge.src, edge.dst)] = numbering.increments[
                        edge.index
                    ]
            self._chords[name] = chords

        self._counters = CounterTable("bl-paths")
        self._increment_ops = 0
        # Per-activation register stack: (proc_name, register, current uid).
        self._stack: list[list] = []
        self._started = False

    # ------------------------------------------------------------------
    def _enter_procedure(self, uid: int) -> None:
        proc_name = self._program.block_by_uid(uid).proc_name
        numbering = self._numberings[proc_name]
        register = self._apply(proc_name, numbering.virtual_entry, uid, 0)
        self._stack.append([proc_name, register, uid])

    def _apply(
        self, proc_name: str, src: int, dst: int, register: int
    ) -> int:
        increment = self._chords[proc_name].get((src, dst))
        if increment is not None:
            register += increment
            self._increment_ops += 1
        return register

    def _end_path(self, last_uid: int, restart_uid: int | None) -> None:
        """Close the current activation's path and optionally restart."""
        if not self._stack:
            return
        proc_name, register, _ = self._stack[-1]
        numbering = self._numberings[proc_name]
        register = self._apply(
            proc_name, last_uid, numbering.virtual_exit, register
        )
        self._counters.bump((proc_name, register))
        if restart_uid is not None:
            self._stack[-1][1] = self._apply(
                proc_name, numbering.virtual_entry, restart_uid, 0
            )
            self._stack[-1][2] = restart_uid

    # ------------------------------------------------------------------
    def observe(self, event: BranchEvent) -> None:
        if not self._started:
            self._started = True
            self._enter_procedure(event.src)

        if event.dst == HALT_DST:
            self._end_path(event.src, None)
            self._stack.clear()
            return

        src_block = self._program.block_by_uid(event.src)
        term_kind = src_block.terminator.kind

        if event.is_call:
            # The caller's path pauses across the call (Ball–Larus paths
            # are intraprocedural); a fresh activation begins.
            self._enter_procedure(event.dst)
            return
        if event.is_return or term_kind is BranchKind.RETURN:
            # The returning activation's path ends at the return.
            self._end_path(event.src, None)
            if self._stack:
                self._stack.pop()
            if self._stack:
                proc_name, register, current = self._stack[-1]
                self._stack[-1][1] = self._apply(
                    proc_name, current, event.dst, register
                )
                self._stack[-1][2] = event.dst
            return
        if event.backward:
            # Forward paths end at backward branches; the branch target
            # starts the next path of the same activation.
            self._end_path(event.src, event.dst)
            return

        proc_name, register, _ = self._stack[-1]
        self._stack[-1][1] = self._apply(
            proc_name, event.src, event.dst, register
        )
        self._stack[-1][2] = event.dst

    def report(self) -> ProfileReport:
        # Close any paths still open at stream end.
        while self._stack:
            _, _, current = self._stack[-1]
            self._end_path(current, None)
            self._stack.pop()
        return ProfileReport(
            scheme=self.name,
            frequencies={key: count for key, count in self._counters.items()},
            counter_space=self._counters.high_water,
            profiling_ops=self._increment_ops + self._counters.updates,
        )

    # ------------------------------------------------------------------
    def decode(self, key: tuple[str, int]) -> list[int]:
        """Block uids of the profiled path ``(procedure, path_id)``.

        The virtual entry/exit nodes are stripped from the result.
        """
        proc_name, path_id = key
        numbering = self._numberings[proc_name]
        sequence = numbering.decode(path_id)
        return [
            uid
            for uid in sequence
            if uid not in (numbering.virtual_entry, numbering.virtual_exit)
        ]

    @property
    def static_path_space(self) -> int:
        """Total static Ball–Larus path count across procedures."""
        return sum(n.num_paths for n in self._numberings.values())
