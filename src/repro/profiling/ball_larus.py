"""Ball–Larus runtime path profiling (paper §2).

Uses the static numbering and spanning-tree instrumentation plan from
:mod:`repro.cfg.spanning_tree` to profile *intraprocedural acyclic forward
paths* at run time the way an instrumented binary would: a per-activation
register ``r`` starts at 0, every traversed *chord* edge adds its
increment, and reaching the procedure's path end bumps ``count[r]``.

The profiler demonstrates the scheme's offline strengths and online costs:
increments only on chord edges (fewer dynamic operations than bit
tracing), but a preparatory static analysis and a counter space bounded by
the *static* path count, which can be exponential in the procedure size.
"""

from __future__ import annotations

import numpy as np

from repro.cfg.block import BranchKind
from repro.cfg.program import Program
from repro.cfg.spanning_tree import BallLarusNumbering, number_program
from repro.profiling.base import Profiler, ProfileReport
from repro.profiling.counters import CounterTable
from repro.trace.batch import CODE_CALL, CODE_RETURN, EventBatch
from repro.trace.events import HALT_DST, BranchEvent


class BallLarusProfiler(Profiler):
    """Runtime profiler over the Ball–Larus instrumentation plan.

    Keys of the resulting frequency map are ``(procedure_name, path_id)``
    pairs; :meth:`decode` recovers the block sequence of any profiled
    path.
    """

    name = "ball-larus"

    def __init__(self, program: Program):
        self._program = program
        self._numberings: dict[str, BallLarusNumbering] = number_program(
            program
        )
        # chord increment lookup per procedure: (src, dst) -> increment.
        self._chords: dict[str, dict[tuple[int, int], int]] = {}
        for name, numbering in self._numberings.items():
            chords = {}
            chord_set = set(numbering.chord_indices)
            for edge in numbering.edges:
                if edge.index in chord_set:
                    chords[(edge.src, edge.dst)] = numbering.increments[
                        edge.index
                    ]
            self._chords[name] = chords

        self._counters = CounterTable("bl-paths")
        self._increment_ops = 0
        # Per-activation register stack: (proc_name, register, current uid).
        self._stack: list[list] = []
        self._started = False
        # Batch-path lookup tables: a dense per-uid "terminator is
        # RETURN" mask, a per-edge-code (increment, is_chord) cache,
        # and dense virtual-entry/exit increment tables.
        self._return_term: np.ndarray | None = None
        self._edge_cache: dict[int, tuple[int, bool]] = {}
        self._virtual_tables: tuple[np.ndarray, ...] | None = None

    # ------------------------------------------------------------------
    def _enter_procedure(self, uid: int) -> None:
        proc_name = self._program.block_by_uid(uid).proc_name
        numbering = self._numberings[proc_name]
        register = self._apply(proc_name, numbering.virtual_entry, uid, 0)
        self._stack.append([proc_name, register, uid])

    def _apply(
        self, proc_name: str, src: int, dst: int, register: int
    ) -> int:
        increment = self._chords[proc_name].get((src, dst))
        if increment is not None:
            register += increment
            self._increment_ops += 1
        return register

    def _end_path(self, last_uid: int, restart_uid: int | None) -> None:
        """Close the current activation's path and optionally restart."""
        if not self._stack:
            return
        proc_name, register, _ = self._stack[-1]
        numbering = self._numberings[proc_name]
        register = self._apply(
            proc_name, last_uid, numbering.virtual_exit, register
        )
        self._counters.bump((proc_name, register))
        if restart_uid is not None:
            self._stack[-1][1] = self._apply(
                proc_name, numbering.virtual_entry, restart_uid, 0
            )
            self._stack[-1][2] = restart_uid

    # ------------------------------------------------------------------
    def observe(self, event: BranchEvent) -> None:
        if not self._started:
            self._started = True
            self._enter_procedure(event.src)

        if event.dst == HALT_DST:
            self._end_path(event.src, None)
            self._stack.clear()
            return

        src_block = self._program.block_by_uid(event.src)
        term_kind = src_block.terminator.kind

        if event.is_call:
            # The caller's path pauses across the call (Ball–Larus paths
            # are intraprocedural); a fresh activation begins.
            self._enter_procedure(event.dst)
            return
        if event.is_return or term_kind is BranchKind.RETURN:
            # The returning activation's path ends at the return.
            self._end_path(event.src, None)
            if self._stack:
                self._stack.pop()
            if self._stack:
                proc_name, register, current = self._stack[-1]
                self._stack[-1][1] = self._apply(
                    proc_name, current, event.dst, register
                )
                self._stack[-1][2] = event.dst
            return
        if event.backward:
            # Forward paths end at backward branches; the branch target
            # starts the next path of the same activation.
            self._end_path(event.src, event.dst)
            return

        proc_name, register, _ = self._stack[-1]
        self._stack[-1][1] = self._apply(
            proc_name, event.src, event.dst, register
        )
        self._stack[-1][2] = event.dst

    def _edge_tables(
        self, codes: np.ndarray, stride: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-event ``(increment, is_chord)`` via an edge-code cache.

        Non-edges (halt events, virtual-edge codes never seen as plain
        transfers) resolve to ``(0, False)``.
        """
        uniq, inverse = np.unique(codes, return_inverse=True)
        inc = np.empty(len(uniq), np.int64)
        chord = np.empty(len(uniq), bool)
        cache = self._edge_cache
        for i, code in enumerate(uniq.tolist()):
            entry = cache.get(code)
            if entry is None:
                s, d_plus1 = divmod(code, stride)
                d = d_plus1 - 1
                increment = None
                if d >= 0:
                    proc = self._program.block_by_uid(s).proc_name
                    increment = self._chords[proc].get((s, d))
                entry = (
                    (0, False) if increment is None else (increment, True)
                )
                cache[code] = entry
            inc[i] = entry[0]
            chord[i] = entry[1]
        return inc[inverse], chord[inverse]

    def _virtual_edge_tables(self) -> tuple[np.ndarray, ...]:
        """Dense per-uid virtual-entry/exit (increment, is_chord) tables."""
        if self._virtual_tables is None:
            blocks = self._program.blocks
            n = len(blocks)
            entry_inc = np.zeros(n, np.int64)
            entry_chord = np.zeros(n, bool)
            exit_inc = np.zeros(n, np.int64)
            exit_chord = np.zeros(n, bool)
            for uid, block in enumerate(blocks):
                numbering = self._numberings[block.proc_name]
                chords = self._chords[block.proc_name]
                inc = chords.get((numbering.virtual_entry, uid))
                if inc is not None:
                    entry_inc[uid] = inc
                    entry_chord[uid] = True
                inc = chords.get((uid, numbering.virtual_exit))
                if inc is not None:
                    exit_inc[uid] = inc
                    exit_chord[uid] = True
            self._virtual_tables = (
                entry_inc,
                entry_chord,
                exit_inc,
                exit_chord,
            )
        return self._virtual_tables

    def observe_batch(self, batch: EventBatch) -> None:
        """Batch path: vectorized activation spans, scalar stack events.

        Only halt/call/return events change the activation stack; the
        Python loop visits just those.  Everything in between — chord
        accumulation over plain edges and the backward-branch path ends
        of the top activation — reduces to prefix-sum differences plus
        dense virtual-entry/exit lookups, with path counts bumped from
        a per-span ``np.unique``.  The resulting profile is identical
        to the scalar one.
        """
        n = len(batch)
        if n == 0:
            return
        src = batch.src
        dst = batch.dst
        kind = batch.kind
        if self._return_term is None:
            self._return_term = np.asarray(
                [
                    block.terminator.kind is BranchKind.RETURN
                    for block in self._program.blocks
                ],
                bool,
            )
        return_term = self._return_term
        entry_inc, entry_chord, exit_inc, exit_chord = (
            self._virtual_edge_tables()
        )
        special = (
            (dst == HALT_DST)
            | (kind == CODE_CALL)
            | (kind == CODE_RETURN)
            | return_term[src]
        )
        bw = batch.backward & ~special
        stride = len(return_term) + 1
        inc_event, chord_event = self._edge_tables(
            src * stride + (dst + 1), stride
        )
        plain = ~special & ~bw
        cum_inc = np.concatenate(([0], np.cumsum(inc_event * plain)))
        cum_chords = np.concatenate(([0], np.cumsum(chord_event & plain)))
        bw_idx = np.flatnonzero(bw)

        if not self._started:
            self._started = True
            self._enter_procedure(int(src[0]))

        stack = self._stack

        def apply_span(begin: int, end: int) -> None:
            # Fold the span [begin, end) — plain edges plus top-of-stack
            # backward path ends — into the stack top.
            top = stack[-1]
            lo = np.searchsorted(bw_idx, begin)
            hi = np.searchsorted(bw_idx, end)
            cuts = bw_idx[lo:hi]
            if not cuts.size:
                top[1] += int(cum_inc[end] - cum_inc[begin])
                top[2] = int(dst[end - 1])
                self._increment_ops += int(
                    cum_chords[end] - cum_chords[begin]
                )
                return
            ends_src = src[cuts]
            starts_dst = dst[cuts]
            # Path i runs from its start (span entry, or the restart
            # after cut i-1) to cut i; its register is the start's
            # entry value plus plain chords plus the virtual exit.
            entry_part = np.empty(len(cuts), np.int64)
            entry_part[0] = top[1]
            entry_part[1:] = entry_inc[starts_dst[:-1]]
            base = np.concatenate(([cum_inc[begin]], cum_inc[cuts[:-1]]))
            regs = entry_part + (cum_inc[cuts] - base) + exit_inc[ends_src]
            uniq, counts = np.unique(regs, return_counts=True)
            proc_name = top[0]
            self._counters.bump_many(
                [(proc_name, register) for register in uniq.tolist()],
                counts.tolist(),
            )
            last = int(cuts[-1])
            ops = int(cum_chords[last] - cum_chords[begin])
            ops += int(np.count_nonzero(entry_chord[starts_dst[:-1]]))
            ops += int(np.count_nonzero(exit_chord[ends_src]))
            # Restart after the last cut, then the trailing plain run.
            restart = int(starts_dst[-1])
            ops += int(entry_chord[restart])
            ops += int(cum_chords[end] - cum_chords[last + 1])
            self._increment_ops += ops
            top[1] = int(entry_inc[restart]) + int(
                cum_inc[end] - cum_inc[last + 1]
            )
            top[2] = int(dst[end - 1])

        pos = 0
        for j in np.flatnonzero(special).tolist():
            if j > pos:
                apply_span(pos, j)
            s = int(src[j])
            d = int(dst[j])
            kd = int(kind[j])
            if d == HALT_DST:
                self._end_path(s, None)
                stack.clear()
            elif kd == CODE_CALL:
                self._enter_procedure(d)
            else:  # return edge, or a RETURN-terminated source block
                self._end_path(s, None)
                if stack:
                    stack.pop()
                if stack:
                    proc_name, register, current = stack[-1]
                    stack[-1][1] = self._apply(proc_name, current, d, register)
                    stack[-1][2] = d
            pos = j + 1
        if pos < n:
            apply_span(pos, n)

    def report(self) -> ProfileReport:
        # Close any paths still open at stream end.
        while self._stack:
            _, _, current = self._stack[-1]
            self._end_path(current, None)
            self._stack.pop()
        return ProfileReport(
            scheme=self.name,
            frequencies={key: count for key, count in self._counters.items()},
            counter_space=self._counters.high_water,
            profiling_ops=self._increment_ops + self._counters.updates,
        )

    # ------------------------------------------------------------------
    def decode(self, key: tuple[str, int]) -> list[int]:
        """Block uids of the profiled path ``(procedure, path_id)``.

        The virtual entry/exit nodes are stripped from the result.
        """
        proc_name, path_id = key
        numbering = self._numberings[proc_name]
        sequence = numbering.decode(path_id)
        return [
            uid
            for uid in sequence
            if uid not in (numbering.virtual_entry, numbering.virtual_exit)
        ]

    @property
    def static_path_space(self) -> int:
        """Total static Ball–Larus path count across procedures."""
        return sum(n.num_paths for n in self._numberings.values())
