"""Shared interface of the concrete profilers.

A profiler consumes a :class:`repro.trace.BranchEvent` stream and builds a
frequency distribution over its profiling unit (paths, edges, blocks…).
Each profiler reports the two cost figures the paper compares schemes on:
counter space and dynamic profiling operations.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable
from dataclasses import dataclass

from repro.trace.batch import EventBatch
from repro.trace.events import BranchEvent


@dataclass(frozen=True)
class ProfileReport:
    """Outcome of a profiling run.

    ``frequencies`` maps the scheme's unit key (path signature, edge pair,
    block uid, …) to its observed count.
    """

    scheme: str
    frequencies: dict
    counter_space: int
    profiling_ops: int

    @property
    def num_units(self) -> int:
        """Distinct profiled units."""
        return len(self.frequencies)

    @property
    def total_count(self) -> int:
        """Sum over all unit counts."""
        return sum(self.frequencies.values())

    def hottest(self, n: int = 10) -> list[tuple[object, int]]:
        """The ``n`` most frequent units, descending."""
        return sorted(self.frequencies.items(), key=lambda kv: -kv[1])[:n]


class Profiler(abc.ABC):
    """Base class: feed events, then ask for the report."""

    #: Scheme name used in reports.
    name: str = "abstract"

    @abc.abstractmethod
    def observe(self, event: BranchEvent) -> None:
        """Process one branch event."""

    @abc.abstractmethod
    def report(self) -> ProfileReport:
        """Finalize and return the profile."""

    def observe_batch(self, batch: EventBatch) -> None:
        """Process one columnar event batch.

        The default bridges to :meth:`observe` event by event;
        profilers with a vectorized batch path override this.  Either
        way the resulting report is identical to the scalar one.
        """
        for event in batch:
            self.observe(event)

    def run(
        self,
        events: Iterable[BranchEvent] | EventBatch | Iterable[EventBatch],
    ) -> ProfileReport:
        """Convenience: observe a whole stream and report.

        Accepts the classic event iterable, a single columnar
        :class:`~repro.trace.batch.EventBatch`, or an iterable of
        batches forming one stream.
        """
        if isinstance(events, EventBatch):
            self.observe_batch(events)
            return self.report()
        for item in events:
            if isinstance(item, EventBatch):
                self.observe_batch(item)
            else:
                self.observe(item)
        return self.report()
