"""Shared interface of the concrete profilers.

A profiler consumes a :class:`repro.trace.BranchEvent` stream and builds a
frequency distribution over its profiling unit (paths, edges, blocks…).
Each profiler reports the two cost figures the paper compares schemes on:
counter space and dynamic profiling operations.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable
from dataclasses import dataclass

from repro.trace.events import BranchEvent


@dataclass(frozen=True)
class ProfileReport:
    """Outcome of a profiling run.

    ``frequencies`` maps the scheme's unit key (path signature, edge pair,
    block uid, …) to its observed count.
    """

    scheme: str
    frequencies: dict
    counter_space: int
    profiling_ops: int

    @property
    def num_units(self) -> int:
        """Distinct profiled units."""
        return len(self.frequencies)

    @property
    def total_count(self) -> int:
        """Sum over all unit counts."""
        return sum(self.frequencies.values())

    def hottest(self, n: int = 10) -> list[tuple[object, int]]:
        """The ``n`` most frequent units, descending."""
        return sorted(self.frequencies.items(), key=lambda kv: -kv[1])[:n]


class Profiler(abc.ABC):
    """Base class: feed events, then ask for the report."""

    #: Scheme name used in reports.
    name: str = "abstract"

    @abc.abstractmethod
    def observe(self, event: BranchEvent) -> None:
        """Process one branch event."""

    @abc.abstractmethod
    def report(self) -> ProfileReport:
        """Finalize and return the profile."""

    def run(self, events: Iterable[BranchEvent]) -> ProfileReport:
        """Convenience: observe a whole stream and report."""
        for event in events:
            self.observe(event)
        return self.report()
