"""Counter tables with space and update accounting.

All profiling schemes count *something* — paths, edges, blocks, heads.
:class:`CounterTable` is the shared hash-table-with-bookkeeping they use,
so space consumption (paper §5.2) and dynamic update counts (paper §4's
runtime overhead) fall out of every scheme uniformly.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.errors import ProfilingError


class CounterTable:
    """A keyed counter table that tracks its own cost figures.

    Attributes
    ----------
    updates:
        Total number of increment operations performed.
    high_water:
        Maximum number of counters ever allocated (the space figure).
    """

    def __init__(self, name: str = "counters"):
        self.name = name
        self._counts: dict[Hashable, int] = {}
        self.updates = 0
        self.high_water = 0

    def bump(self, key: Hashable, amount: int = 1) -> int:
        """Increment ``key``'s counter; returns the new value."""
        if amount < 0:
            raise ProfilingError("cannot bump a counter by a negative amount")
        new_value = self._counts.get(key, 0) + amount
        self._counts[key] = new_value
        self.updates += 1
        if len(self._counts) > self.high_water:
            self.high_water = len(self._counts)
        return new_value

    def bump_many(
        self, keys: Iterable[Hashable], amounts: Iterable[int]
    ) -> None:
        """Apply many increments in one call, with scalar accounting.

        Equivalent to ``bump(key, 1)`` repeated ``amount`` times for
        each pair — ``updates`` grows by the *total* increment count and
        ``high_water`` by the final table size (exact, because a bump
        sequence only ever grows the table) — so batched profilers
        report the same cost figures as their scalar loops.
        """
        counts = self._counts
        total = 0
        for key, amount in zip(keys, amounts):
            if amount < 0:
                raise ProfilingError(
                    "cannot bump a counter by a negative amount"
                )
            counts[key] = counts.get(key, 0) + amount
            total += amount
        self.updates += total
        if len(counts) > self.high_water:
            self.high_water = len(counts)

    def get(self, key: Hashable) -> int:
        """Current count for ``key`` (0 if never bumped)."""
        return self._counts.get(key, 0)

    def remove(self, key: Hashable) -> None:
        """Retire a counter (NET retires head counters after prediction)."""
        self._counts.pop(key, None)

    def items(self) -> Iterator[tuple[Hashable, int]]:
        """Iterate over (key, count) pairs."""
        return iter(self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts

    def total(self) -> int:
        """Sum of all counters."""
        return sum(self._counts.values())

    def top(self, n: int) -> list[tuple[Hashable, int]]:
        """The ``n`` highest counters, descending."""
        return sorted(self._counts.items(), key=lambda kv: -kv[1])[:n]
