"""Young–Smith k-bounded general path profiling (paper §2).

A *k-bounded general path* is an intraprocedural path of at most ``k``
branches; unlike Ball–Larus forward paths it may include backward edges.
The profiler keeps a FIFO queue of the most recently executed ``k``
branches and bumps the counter of the current window each time a new
branch enters the queue (the sliding-window formulation of Young & Smith's
lazy update).

Costs mirror the paper's discussion: one queue update plus one table
update per executed branch — strictly more dynamic work than NET's
head-only counting, and a counter space keyed by distinct k-windows.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.profiling.base import Profiler, ProfileReport
from repro.profiling.counters import CounterTable
from repro.trace.batch import CODE_CALL, CODE_RETURN, EventBatch
from repro.trace.events import HALT_DST, BranchEvent


def _window_ranks(codes: np.ndarray, k: int) -> np.ndarray:
    """Dense ids for every length-``k`` window of ``codes``.

    Two windows get the same id iff their code sequences are equal.
    Rank doubling keeps every intermediate value below ``len(codes)``
    so the pairwise combinations never overflow int64 — unlike a direct
    polynomial encoding of the window contents.
    """
    _, ids = np.unique(codes, return_inverse=True)
    by_len = {1: ids}
    length = 1
    while length * 2 <= k:
        ids = by_len[length]
        upper = int(ids.max()) + 1
        combined = ids[: len(ids) - length] * upper + ids[length:]
        _, combined = np.unique(combined, return_inverse=True)
        length *= 2
        by_len[length] = combined
    result = by_len[length]
    offset = length
    remaining = k - length
    while remaining:
        piece = 1 << (remaining.bit_length() - 1)
        part = by_len[piece]
        upper = int(part.max()) + 1
        count = len(codes) - (offset + piece) + 1
        combined = result[:count] * upper + part[offset : offset + count]
        _, result = np.unique(combined, return_inverse=True)
        offset += piece
        remaining -= piece
    return result


class KBoundedPathProfiler(Profiler):
    """Sliding-window profiler over the last ``k`` branches.

    Parameters
    ----------
    k:
        Window length in branches.
    intraprocedural:
        When True (the Young–Smith definition) the window resets at
        procedure calls and returns, so general paths never span
        procedure boundaries.
    """

    name = "k-bounded"

    def __init__(self, k: int = 8, intraprocedural: bool = True):
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.intraprocedural = intraprocedural
        self._window: deque[tuple[int, int]] = deque(maxlen=k)
        self._counters = CounterTable("k-paths")
        self._queue_ops = 0

    def observe(self, event: BranchEvent) -> None:
        if event.dst == HALT_DST:
            self._window.clear()
            return
        if self.intraprocedural and (event.is_call or event.is_return):
            self._window.clear()
            return
        self._window.append((event.src, event.dst))
        self._queue_ops += 1
        if len(self._window) == self.k:
            self._counters.bump(tuple(self._window))

    def observe_batch(self, batch: EventBatch) -> None:
        """Vectorized sliding windows over the batch's branch pairs.

        Window resets (halt, and call/return in intraprocedural mode)
        split the kept pairs into runs; every length-``k`` window fully
        inside one run — including windows straddling the carried-over
        deque from the previous batch — bumps its counter, with the
        same ``queue_ops``/``updates`` accounting as the scalar loop.
        """
        n = len(batch)
        if n == 0:
            return
        src = batch.src
        dst = batch.dst
        kind = batch.kind
        reset = dst == HALT_DST
        if self.intraprocedural:
            reset |= (kind == CODE_CALL) | (kind == CODE_RETURN)
        kept = np.flatnonzero(~reset)
        self._queue_ops += int(kept.size)
        k = self.k

        # Pairs in append order, prefixed with the carried window (the
        # open run's last ≤k pairs); run ids distinguish reset spans —
        # the carry belongs to run 0, the run open when the batch began.
        carry = list(self._window)
        run_of_kept = np.cumsum(reset)[kept] if kept.size else kept
        pair_src = src[kept]
        pair_dst = dst[kept]
        run_id = run_of_kept
        if carry:
            pair_src = np.concatenate(
                ([pair[0] for pair in carry], pair_src)
            )
            pair_dst = np.concatenate(
                ([pair[1] for pair in carry], pair_dst)
            )
            run_id = np.concatenate((np.zeros(len(carry), np.int64), run_id))
        total = len(pair_src)

        if total >= k:
            ends = np.arange(k - 1, total)
            # Valid: the whole window sits in one run, and it ends at a
            # pair appended by THIS batch (carry-ending windows were
            # already counted).
            valid = run_id[ends] == run_id[ends - (k - 1)]
            valid &= ends >= len(carry)
            chosen = ends[valid] - (k - 1)
            if chosen.size:
                stride = int(pair_dst.max()) + 1
                win_id = _window_ranks(pair_src * stride + pair_dst, k)
                _, first, counts = np.unique(
                    win_id[chosen], return_index=True, return_counts=True
                )
                keys = []
                for start in chosen[first].tolist():
                    keys.append(
                        tuple(
                            zip(
                                pair_src[start : start + k].tolist(),
                                pair_dst[start : start + k].tolist(),
                            )
                        )
                    )
                self._counters.bump_many(keys, counts.tolist())

        # Rebuild the deque: the last ≤k pairs of the run still open at
        # batch end (empty if the batch ended on a reset).
        resets = np.flatnonzero(reset)
        if resets.size:
            tail = kept[kept > resets[-1]]
            tail_pairs = zip(src[tail][-k:].tolist(), dst[tail][-k:].tolist())
        else:
            tail_pairs = zip(
                pair_src[-k:].tolist(), pair_dst[-k:].tolist()
            )
        self._window = deque(tail_pairs, maxlen=k)

    def report(self) -> ProfileReport:
        return ProfileReport(
            scheme=self.name,
            frequencies={key: count for key, count in self._counters.items()},
            counter_space=self._counters.high_water,
            profiling_ops=self._queue_ops + self._counters.updates,
        )
