"""Young–Smith k-bounded general path profiling (paper §2).

A *k-bounded general path* is an intraprocedural path of at most ``k``
branches; unlike Ball–Larus forward paths it may include backward edges.
The profiler keeps a FIFO queue of the most recently executed ``k``
branches and bumps the counter of the current window each time a new
branch enters the queue (the sliding-window formulation of Young & Smith's
lazy update).

Costs mirror the paper's discussion: one queue update plus one table
update per executed branch — strictly more dynamic work than NET's
head-only counting, and a counter space keyed by distinct k-windows.
"""

from __future__ import annotations

from collections import deque

from repro.profiling.base import Profiler, ProfileReport
from repro.profiling.counters import CounterTable
from repro.trace.events import HALT_DST, BranchEvent


class KBoundedPathProfiler(Profiler):
    """Sliding-window profiler over the last ``k`` branches.

    Parameters
    ----------
    k:
        Window length in branches.
    intraprocedural:
        When True (the Young–Smith definition) the window resets at
        procedure calls and returns, so general paths never span
        procedure boundaries.
    """

    name = "k-bounded"

    def __init__(self, k: int = 8, intraprocedural: bool = True):
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.intraprocedural = intraprocedural
        self._window: deque[tuple[int, int]] = deque(maxlen=k)
        self._counters = CounterTable("k-paths")
        self._queue_ops = 0

    def observe(self, event: BranchEvent) -> None:
        if event.dst == HALT_DST:
            self._window.clear()
            return
        if self.intraprocedural and (event.is_call or event.is_return):
            self._window.clear()
            return
        self._window.append((event.src, event.dst))
        self._queue_ops += 1
        if len(self._window) == self.k:
            self._counters.bump(tuple(self._window))

    def report(self) -> ProfileReport:
        return ProfileReport(
            scheme=self.name,
            frequencies={key: count for key, count in self._counters.items()},
            counter_space=self._counters.high_water,
            profiling_ops=self._queue_ops + self._counters.updates,
        )
