"""Bit tracing: on-the-fly path signatures (paper §2).

A path is identified by ``<start_address>.<history>,<indirect targets>``.
The profiler mirrors the paper's description exactly: a signature register
shifts in one bit per conditional branch outcome, appends indirect branch
targets, and on reaching a path end uses the signature as a hash-table key
to bump the path's counter.  No preparatory static analysis is needed —
the advantage over Ball–Larus numbering the paper highlights — at the
price of per-branch shift operations on *every* branch.

Path-end detection follows the interprocedural forward-path definition,
shared with :mod:`repro.trace.extractor` (and tested to agree with it).
"""

from __future__ import annotations

import numpy as np

from repro.cfg.program import Program
from repro.profiling.base import Profiler, ProfileReport
from repro.profiling.counters import CounterTable
from repro.trace.batch import (
    CODE_CALL,
    CODE_FALLTHROUGH,
    CODE_INDIRECT,
    CODE_TAKEN,
    EventBatch,
)
from repro.trace.columnar import find_cuts
from repro.trace.events import HALT_DST, BranchEvent
from repro.trace.path import PathSignature, SignatureRegister


class BitTracingProfiler(Profiler):
    """Online path profiling via signature registers.

    Parameters
    ----------
    program:
        Supplies block addresses for the signatures.
    max_blocks:
        Path-length cap, matching the extractor's.
    """

    name = "bit-tracing"

    def __init__(self, program: Program, max_blocks: int | None = 256):
        self._program = program
        self._max_blocks = max_blocks
        self._counters = CounterTable("paths")
        self._register: SignatureRegister | None = None
        self._blocks_in_path = 1
        self._open_calls = 0
        self._shift_ops = 0
        self._started = False
        # Columnar-mode state: the open segment's start uid and its
        # events so far, carried between observe_batch calls.
        self._batch_mode = False
        self._batch_halted = False
        self._seg_uid: int | None = None
        self._carry_dst: np.ndarray | None = None
        self._carry_kind: np.ndarray | None = None
        self._carry_backward: np.ndarray | None = None
        self._sig_memo: dict[tuple, PathSignature] = {}

    def _start(self, uid: int) -> None:
        address = self._program.block_by_uid(uid).address
        self._register = SignatureRegister(address)
        self._blocks_in_path = 1
        self._open_calls = 0

    def _finish(self) -> None:
        if self._register is None:
            return
        signature: PathSignature = self._register.snapshot()
        self._counters.bump(signature)
        self._register = None

    def _bump_segment(
        self, uid: int, dst_seg: np.ndarray, kind_seg: np.ndarray
    ) -> None:
        """Bump the signature of one segment (columnar mode).

        The signature only depends on the start uid, the kind codes and
        the indirect targets, so recurring segments hit a memo instead
        of replaying their shifts.
        """
        key = (uid, (dst_seg * np.int64(8) + kind_seg).tobytes())
        signature = self._sig_memo.get(key)
        if signature is None:
            signature = self._build_signature(uid, dst_seg, kind_seg)
            self._sig_memo[key] = signature
        self._counters.bump(signature)

    def _build_signature(
        self, uid: int, dst_seg: np.ndarray, kind_seg: np.ndarray
    ) -> PathSignature:
        """Replay one segment's shifts into a fresh register (memo miss)."""
        register = SignatureRegister(self._program.block_by_uid(uid).address)
        for kc, dc in zip(kind_seg.tolist(), dst_seg.tolist()):
            if kc == CODE_TAKEN:
                register.shift(1)
            elif kc == CODE_FALLTHROUGH:
                register.shift(0)
            elif kc == CODE_INDIRECT and dc != HALT_DST:
                register.record_indirect(
                    self._program.block_by_uid(dc).address
                )
        return register.snapshot()

    def _drain_batch_state(self) -> None:
        """Rebuild the scalar register from the open columnar segment.

        Called when :meth:`observe` follows columnar batches, so mixing
        representations stays exact.  Shift ops were already counted
        when the carried events arrived, so the replay does not recount
        them.
        """
        self._batch_mode = False
        if self._seg_uid is None:
            # Halted (or tail already flushed): scalar register is None.
            self._carry_dst = None
            self._carry_kind = None
            self._carry_backward = None
            return
        register = SignatureRegister(
            self._program.block_by_uid(self._seg_uid).address
        )
        open_calls = 0
        blocks = 1
        if self._carry_dst is not None:
            for kc, dc in zip(
                self._carry_kind.tolist(), self._carry_dst.tolist()
            ):
                if kc == CODE_TAKEN:
                    register.shift(1)
                elif kc == CODE_FALLTHROUGH:
                    register.shift(0)
                elif kc == CODE_INDIRECT and dc != HALT_DST:
                    register.record_indirect(
                        self._program.block_by_uid(dc).address
                    )
                if kc == CODE_CALL:
                    open_calls += 1
                blocks += 1
        self._register = register
        self._open_calls = open_calls
        self._blocks_in_path = blocks
        self._seg_uid = None
        self._carry_dst = None
        self._carry_kind = None
        self._carry_backward = None

    def observe_batch(self, batch: EventBatch) -> None:
        """Columnar path: segment with find_cuts, bump memoized signatures.

        Produces exactly the scalar profile: shift-op accounting is a
        vectorized count, and each cut segment bumps the same signature
        the register would have accumulated.  Events after a halt are
        ignored (the trace has ended).
        """
        if self._started and not self._batch_mode:
            # A scalar register is open; bridge event-by-event.
            for event in batch:
                self.observe(event)
            return
        if self._batch_halted or len(batch) == 0:
            return
        if not self._started:
            self._started = True
            self._seg_uid = int(batch.src[0])
        self._batch_mode = True

        dst = batch.dst
        kind = batch.kind
        backward = batch.backward
        halts = np.flatnonzero(dst == HALT_DST)
        if halts.size:
            end = int(halts[0]) + 1
            dst = dst[:end]
            kind = kind[:end]
            backward = backward[:end]
            self._batch_halted = True

        conditional = (kind == CODE_TAKEN) | (kind == CODE_FALLTHROUGH)
        indirect = (kind == CODE_INDIRECT) & (dst != HALT_DST)
        self._shift_ops += int(np.count_nonzero(conditional))
        self._shift_ops += int(np.count_nonzero(indirect))

        if self._carry_dst is not None and len(self._carry_dst):
            dst = np.concatenate((self._carry_dst, dst))
            kind = np.concatenate((self._carry_kind, kind))
            backward = np.concatenate((self._carry_backward, backward))

        # One combined column keys the segment memo: the signature only
        # depends on (start uid, kinds, indirect targets), all captured
        # by dst * 8 + kind.
        comb = dst * np.int64(8) + kind
        cuts = find_cuts(dst, kind, backward, self._max_blocks)
        memo = self._sig_memo
        bump = self._counters.bump
        begin = 0
        for cut, next_uid in zip(cuts.tolist(), dst[cuts].tolist()):
            stop = cut + 1
            key = (self._seg_uid, comb[begin:stop].tobytes())
            signature = memo.get(key)
            if signature is None:
                signature = self._build_signature(
                    self._seg_uid, dst[begin:stop], kind[begin:stop]
                )
                memo[key] = signature
            bump(signature)
            self._seg_uid = None if next_uid == HALT_DST else next_uid
            begin = stop
        if self._batch_halted:
            self._carry_dst = None
            self._carry_kind = None
            self._carry_backward = None
        else:
            self._carry_dst = dst[begin:].copy()
            self._carry_kind = kind[begin:].copy()
            self._carry_backward = backward[begin:].copy()

    def observe(self, event: BranchEvent) -> None:
        if self._batch_mode:
            self._drain_batch_state()
        if not self._started:
            self._started = True
            self._start(event.src)

        bit = event.history_bit
        if bit is not None:
            self._register.shift(bit)
            self._shift_ops += 1
        if event.is_indirect and event.dst != HALT_DST:
            self._register.record_indirect(
                self._program.block_by_uid(event.dst).address
            )
            self._shift_ops += 1

        if event.dst == HALT_DST:
            self._finish()
            return
        if event.backward:
            self._finish()
            self._start(event.dst)
            return
        if event.is_call:
            self._open_calls += 1
        elif event.is_return and self._open_calls > 0:
            self._finish()
            self._start(event.dst)
            return

        if (
            self._max_blocks is not None
            and self._blocks_in_path >= self._max_blocks
        ):
            # The overflowing transfer ends the path; its target starts
            # the next one (same rule as the extractor).
            self._finish()
            self._start(event.dst)
        else:
            self._blocks_in_path += 1

    def report(self) -> ProfileReport:
        if self._batch_mode and self._seg_uid is not None:
            # Flush the open columnar segment (the path in flight when
            # the stream ended), mirroring the scalar register flush.
            dst_tail = (
                self._carry_dst
                if self._carry_dst is not None
                else np.empty(0, np.int64)
            )
            kind_tail = (
                self._carry_kind
                if self._carry_kind is not None
                else np.empty(0, np.uint8)
            )
            self._bump_segment(self._seg_uid, dst_tail, kind_tail)
            self._seg_uid = None
            self._carry_dst = None
            self._carry_kind = None
            self._carry_backward = None
        self._finish()
        return ProfileReport(
            scheme=self.name,
            frequencies={key: count for key, count in self._counters.items()},
            counter_space=self._counters.high_water,
            profiling_ops=self._shift_ops + self._counters.updates,
        )
