"""Bit tracing: on-the-fly path signatures (paper §2).

A path is identified by ``<start_address>.<history>,<indirect targets>``.
The profiler mirrors the paper's description exactly: a signature register
shifts in one bit per conditional branch outcome, appends indirect branch
targets, and on reaching a path end uses the signature as a hash-table key
to bump the path's counter.  No preparatory static analysis is needed —
the advantage over Ball–Larus numbering the paper highlights — at the
price of per-branch shift operations on *every* branch.

Path-end detection follows the interprocedural forward-path definition,
shared with :mod:`repro.trace.extractor` (and tested to agree with it).
"""

from __future__ import annotations

from repro.cfg.program import Program
from repro.profiling.base import Profiler, ProfileReport
from repro.profiling.counters import CounterTable
from repro.trace.events import HALT_DST, BranchEvent
from repro.trace.path import PathSignature, SignatureRegister


class BitTracingProfiler(Profiler):
    """Online path profiling via signature registers.

    Parameters
    ----------
    program:
        Supplies block addresses for the signatures.
    max_blocks:
        Path-length cap, matching the extractor's.
    """

    name = "bit-tracing"

    def __init__(self, program: Program, max_blocks: int | None = 256):
        self._program = program
        self._max_blocks = max_blocks
        self._counters = CounterTable("paths")
        self._register: SignatureRegister | None = None
        self._blocks_in_path = 1
        self._open_calls = 0
        self._shift_ops = 0
        self._started = False

    def _start(self, uid: int) -> None:
        address = self._program.block_by_uid(uid).address
        self._register = SignatureRegister(address)
        self._blocks_in_path = 1
        self._open_calls = 0

    def _finish(self) -> None:
        if self._register is None:
            return
        signature: PathSignature = self._register.snapshot()
        self._counters.bump(signature)
        self._register = None

    def observe(self, event: BranchEvent) -> None:
        if not self._started:
            self._started = True
            self._start(event.src)

        bit = event.history_bit
        if bit is not None:
            self._register.shift(bit)
            self._shift_ops += 1
        if event.is_indirect and event.dst != HALT_DST:
            self._register.record_indirect(
                self._program.block_by_uid(event.dst).address
            )
            self._shift_ops += 1

        if event.dst == HALT_DST:
            self._finish()
            return
        if event.backward:
            self._finish()
            self._start(event.dst)
            return
        if event.is_call:
            self._open_calls += 1
        elif event.is_return and self._open_calls > 0:
            self._finish()
            self._start(event.dst)
            return

        if (
            self._max_blocks is not None
            and self._blocks_in_path >= self._max_blocks
        ):
            # The overflowing transfer ends the path; its target starts
            # the next one (same rule as the extractor).
            self._finish()
            self._start(event.dst)
        else:
            self._blocks_in_path += 1

    def report(self) -> ProfileReport:
        self._finish()
        return ProfileReport(
            scheme=self.name,
            frequencies={key: count for key, count in self._counters.items()},
            counter_space=self._counters.high_water,
            profiling_ops=self._shift_ops + self._counters.updates,
        )
