"""Edge profiling baseline.

Edge profiles are the classic cheap alternative to path profiles; the
paper's related work (§7) cites Ball/Mataga/Sagiv's result that edge
profiles recover a large share of the hot path profile offline.  The
profiler counts every traversed (src, dst) block pair.
"""

from __future__ import annotations

import numpy as np

from repro.profiling.base import Profiler, ProfileReport
from repro.profiling.counters import CounterTable
from repro.trace.batch import EventBatch
from repro.trace.events import HALT_DST, BranchEvent


class EdgeProfiler(Profiler):
    """Counts control-flow edge traversals."""

    name = "edge"

    def __init__(self) -> None:
        self._counters = CounterTable("edges")

    def observe(self, event: BranchEvent) -> None:
        if event.dst == HALT_DST:
            return
        self._counters.bump((event.src, event.dst))

    def observe_batch(self, batch: EventBatch) -> None:
        """Vectorized: encode (src, dst) pairs, count distinct codes."""
        live = batch.dst != HALT_DST
        src = batch.src[live]
        dst = batch.dst[live]
        if not len(src):
            return
        stride = int(dst.max()) + 1
        codes, counts = np.unique(src * stride + dst, return_counts=True)
        keys = [
            (code // stride, code % stride) for code in codes.tolist()
        ]
        self._counters.bump_many(keys, counts.tolist())

    def report(self) -> ProfileReport:
        return ProfileReport(
            scheme=self.name,
            frequencies={key: count for key, count in self._counters.items()},
            counter_space=self._counters.high_water,
            profiling_ops=self._counters.updates,
        )
