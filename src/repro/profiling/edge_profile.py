"""Edge profiling baseline.

Edge profiles are the classic cheap alternative to path profiles; the
paper's related work (§7) cites Ball/Mataga/Sagiv's result that edge
profiles recover a large share of the hot path profile offline.  The
profiler counts every traversed (src, dst) block pair.
"""

from __future__ import annotations

from repro.profiling.base import Profiler, ProfileReport
from repro.profiling.counters import CounterTable
from repro.trace.events import HALT_DST, BranchEvent


class EdgeProfiler(Profiler):
    """Counts control-flow edge traversals."""

    name = "edge"

    def __init__(self) -> None:
        self._counters = CounterTable("edges")

    def observe(self, event: BranchEvent) -> None:
        if event.dst == HALT_DST:
            return
        self._counters.bump((event.src, event.dst))

    def report(self) -> ProfileReport:
        return ProfileReport(
            scheme=self.name,
            frequencies={key: count for key, count in self._counters.items()},
            counter_space=self._counters.high_water,
            profiling_ops=self._counters.updates,
        )
